// Unit tests for src/baselines: dynamic MinHash, OPH (plain + densified),
// Random Pairing, and b-bit minwise — static accuracy, deletion semantics
// (including the §III bias behaviours the paper analyzes), and the RP
// uniformity invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

#include "baselines/bbit_minwise.h"
#include "baselines/minhash.h"
#include "baselines/oph.h"
#include "baselines/random_pairing.h"
#include "common/random.h"

namespace vos::baseline {
namespace {

using core::PairEstimate;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

constexpr uint64_t kItems = 100000;

/// Inserts `count` items starting at `first` for `user`.
template <typename Method>
void InsertRange(Method& method, UserId user, ItemId first, ItemId count) {
  for (ItemId i = 0; i < count; ++i) {
    method.Update({user, first + i, Action::kInsert});
  }
}

// ----------------------------------------------------------------- MinHash

TEST(MinHashTest, StaticJaccardEstimateIsAccurate) {
  // J = 100/300 = 1/3 with k=400 registers: sd = sqrt(J(1-J)/k) ≈ 0.024.
  MinHashConfig config;
  config.k = 400;
  config.seed = 5;
  MinHash method(config, 2, kItems);
  InsertRange(method, 0, 0, 200);    // user 0: [0, 200)
  InsertRange(method, 1, 100, 200);  // user 1: [100, 300): 100 common
  const PairEstimate est = method.EstimatePair(0, 1);
  EXPECT_NEAR(est.jaccard, 1.0 / 3.0, 0.08);
  EXPECT_NEAR(est.common, 100.0, 25.0);
}

TEST(MinHashTest, IdenticalAndDisjointSets) {
  MinHashConfig config;
  config.k = 128;
  MinHash method(config, 3, kItems);
  InsertRange(method, 0, 0, 50);
  InsertRange(method, 1, 0, 50);
  InsertRange(method, 2, 5000, 50);
  EXPECT_DOUBLE_EQ(method.EstimatePair(0, 1).jaccard, 1.0);
  EXPECT_DOUBLE_EQ(method.EstimatePair(0, 2).jaccard, 0.0);
}

TEST(MinHashTest, DeletingSampledMinEmptiesRegister) {
  MinHashConfig config;
  config.k = 16;
  MinHash method(config, 1, kItems);
  method.Update({0, 7, Action::kInsert});
  for (uint32_t j = 0; j < config.k; ++j) {
    EXPECT_TRUE(method.RegisterAt(0, j).occupied());
    EXPECT_EQ(method.RegisterAt(0, j).item, 7u);
  }
  method.Update({0, 7, Action::kDelete});
  for (uint32_t j = 0; j < config.k; ++j) {
    EXPECT_FALSE(method.RegisterAt(0, j).occupied());
  }
  EXPECT_EQ(method.Cardinality(0), 0u);
}

TEST(MinHashTest, DeletingNonMinLeavesRegisterIntact) {
  MinHashConfig config;
  config.k = 64;
  MinHash method(config, 1, kItems);
  InsertRange(method, 0, 0, 100);
  // Snapshot registers, delete an item, verify only registers sampling it
  // changed.
  std::vector<MinRegister> before;
  for (uint32_t j = 0; j < config.k; ++j) {
    before.push_back(method.RegisterAt(0, j));
  }
  method.Update({0, 42, Action::kDelete});
  for (uint32_t j = 0; j < config.k; ++j) {
    const MinRegister& after = method.RegisterAt(0, j);
    if (before[j].item == 42) {
      EXPECT_FALSE(after.occupied());
    } else {
      EXPECT_EQ(after.rank, before[j].rank);
      EXPECT_EQ(after.item, before[j].item);
    }
  }
}

TEST(MinHashTest, EmptiedRegisterRefillsOnInsert) {
  MinHashConfig config;
  config.k = 8;
  MinHash method(config, 1, kItems);
  method.Update({0, 1, Action::kInsert});
  method.Update({0, 1, Action::kDelete});
  method.Update({0, 2, Action::kInsert});
  for (uint32_t j = 0; j < config.k; ++j) {
    EXPECT_TRUE(method.RegisterAt(0, j).occupied());
    EXPECT_EQ(method.RegisterAt(0, j).item, 2u);
  }
}

TEST(MinHashTest, FeistelModeMatchesExpectedAccuracy) {
  MinHashConfig config;
  config.k = 256;
  config.hash_mode = HashMode::kFeistel;
  config.seed = 9;
  MinHash method(config, 2, 4096);
  InsertRange(method, 0, 0, 120);
  InsertRange(method, 1, 60, 120);  // 60 common of 180 union
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 60.0 / 180.0, 0.09);
}

TEST(MinHashTest, MemoryModelIs32BitsPerRegister) {
  MinHashConfig config;
  config.k = 100;
  MinHash method(config, 50, kItems);
  EXPECT_EQ(method.MemoryBits(), 100u * 32u * 50u);
}

// --------------------------------------------------------------------- OPH

TEST(OphTest, StaticJaccardEstimateIsAccurate) {
  OphConfig config;
  config.k = 400;
  config.seed = 3;
  Oph method(config, 2, kItems);
  InsertRange(method, 0, 0, 200);
  InsertRange(method, 1, 100, 200);
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 1.0 / 3.0, 0.09);
}

TEST(OphTest, EachItemTouchesExactlyItsBin) {
  OphConfig config;
  config.k = 32;
  Oph method(config, 1, kItems);
  method.Update({0, 12345, Action::kInsert});
  const uint32_t expected_bin = method.BinOf(12345);
  int occupied = 0;
  for (uint32_t j = 0; j < config.k; ++j) {
    if (method.BinAt(0, j).occupied()) {
      ++occupied;
      EXPECT_EQ(j, expected_bin);
      EXPECT_EQ(method.BinAt(0, j).item, 12345u);
    }
  }
  EXPECT_EQ(occupied, 1);
}

TEST(OphTest, DeletionOfBinMinEmptiesOnlyThatBin) {
  OphConfig config;
  config.k = 16;
  Oph method(config, 1, kItems);
  InsertRange(method, 0, 0, 200);
  int occupied_before = 0;
  for (uint32_t j = 0; j < config.k; ++j) {
    occupied_before += method.BinAt(0, j).occupied();
  }
  // Find one bin's sampled item and delete it.
  const uint32_t bin = 3;
  ASSERT_TRUE(method.BinAt(0, bin).occupied());
  const ItemId victim = method.BinAt(0, bin).item;
  method.Update({0, victim, Action::kDelete});
  EXPECT_FALSE(method.BinAt(0, bin).occupied());
  int occupied_after = 0;
  for (uint32_t j = 0; j < config.k; ++j) {
    occupied_after += method.BinAt(0, j).occupied();
  }
  EXPECT_EQ(occupied_after, occupied_before - 1);
}

TEST(OphTest, EstimatorIgnoresJointlyEmptyBins) {
  OphConfig config;
  config.k = 64;
  Oph method(config, 2, kItems);
  // Tiny sets: most bins empty on both sides; estimator must not count
  // them as matches.
  method.Update({0, 10, Action::kInsert});
  method.Update({1, 10, Action::kInsert});
  EXPECT_DOUBLE_EQ(method.EstimatePair(0, 1).jaccard, 1.0);
  method.Update({1, 999, Action::kInsert});
  const double j = method.EstimatePair(0, 1).jaccard;
  EXPECT_GT(j, 0.2);
  EXPECT_LT(j, 1.01);
}

/// Densification sweep: all variants fill every bin and give a sane static
/// estimate.
class DensificationTest : public ::testing::TestWithParam<Densification> {};

TEST_P(DensificationTest, FillsAllBinsAndEstimatesStaticJaccard) {
  OphConfig config;
  config.k = 256;
  config.densification = GetParam();
  config.seed = 7;
  Oph method(config, 2, kItems);
  InsertRange(method, 0, 0, 120);
  InsertRange(method, 1, 60, 120);
  for (UserId u : {0u, 1u}) {
    const auto row = method.DensifiedRow(u);
    for (uint32_t j = 0; j < config.k; ++j) {
      EXPECT_TRUE(row[j].occupied()) << "bin " << j << " user " << u;
    }
  }
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 60.0 / 180.0, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Variants, DensificationTest,
                         ::testing::Values(Densification::kRotationRight,
                                           Densification::kRandomDirection,
                                           Densification::kOptimal));

TEST(OphTest, DensificationNamesAppearInMethodName) {
  OphConfig config;
  config.densification = Densification::kRotationRight;
  Oph method(config, 1, kItems);
  EXPECT_EQ(method.Name(), "OPH+rotation-right");
  config.densification = Densification::kNone;
  Oph plain(config, 1, kItems);
  EXPECT_EQ(plain.Name(), "OPH");
}

// -------------------------------------------------------------- RandomPairing

TEST(RandomPairingTest, SlotHoldsUniformSampleUnderInsertions) {
  // After inserting n items, each slot's sample should be uniform over
  // them. Aggregate over many slots (they are independent samplers).
  RandomPairingConfig config;
  config.k = 2000;
  config.seed = 3;
  RandomPairing method(config, 1);
  constexpr int kN = 10;
  InsertRange(method, 0, 0, kN);
  std::vector<int> counts(kN, 0);
  for (uint32_t j = 0; j < config.k; ++j) {
    const auto& slot = method.SlotAt(0, j);
    ASSERT_TRUE(slot.occupied);
    ASSERT_LT(slot.item, static_cast<ItemId>(kN));
    ++counts[slot.item];
  }
  const double expected = static_cast<double>(config.k) / kN;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);  // chi2(9 dof, 99.9%)
}

TEST(RandomPairingTest, UniformityRestoredAfterDeletionCompensation) {
  // Delete some items, insert new ones; once compensation drains, samples
  // must again be uniform over the *current* set. This is the property
  // MinHash/OPH lose (§III) and RP retains.
  RandomPairingConfig config;
  config.k = 3000;
  config.seed = 11;
  RandomPairing method(config, 1);
  InsertRange(method, 0, 0, 10);  // items 0..9
  for (ItemId i = 0; i < 5; ++i) {
    method.Update({0, i, Action::kDelete});  // delete 0..4
  }
  InsertRange(method, 0, 100, 5);  // items 100..104; set = {5..9,100..104}
  std::map<ItemId, int> counts;
  int occupied = 0;
  for (uint32_t j = 0; j < config.k; ++j) {
    const auto& slot = method.SlotAt(0, j);
    if (!slot.occupied) continue;
    ++occupied;
    ++counts[slot.item];
  }
  ASSERT_GT(occupied, 2000);  // most slots drained their compensation
  for (const auto& [item, count] : counts) {
    const bool valid = (item >= 5 && item <= 9) ||
                       (item >= 100 && item <= 104);
    EXPECT_TRUE(valid) << "stale item " << item << " in sample";
    EXPECT_NEAR(static_cast<double>(count) / occupied, 0.1, 0.03)
        << "item " << item;
  }
}

TEST(RandomPairingTest, DeleteOfSampledItemVacatesSlot) {
  RandomPairingConfig config;
  config.k = 64;
  RandomPairing method(config, 1);
  method.Update({0, 5, Action::kInsert});
  method.Update({0, 5, Action::kDelete});
  for (uint32_t j = 0; j < config.k; ++j) {
    const auto& slot = method.SlotAt(0, j);
    EXPECT_FALSE(slot.occupied);
    EXPECT_EQ(slot.c1, 1u);
    EXPECT_EQ(slot.c2, 0u);
  }
  EXPECT_EQ(method.Cardinality(0), 0u);
}

TEST(RandomPairingTest, EstimateIsUnbiasedOnKnownOverlap) {
  // s = 30, n_u = n_v = 60: average ŝ over seeds ≈ 30.
  double total = 0;
  constexpr int kRuns = 40;
  for (int run = 0; run < kRuns; ++run) {
    RandomPairingConfig config;
    config.k = 200;
    config.seed = 1000 + run;
    config.options.clamp_to_feasible = false;  // unbiasedness check
    RandomPairing method(config, 2);
    InsertRange(method, 0, 0, 60);
    InsertRange(method, 1, 30, 60);
    total += method.EstimatePair(0, 1).common;
  }
  EXPECT_NEAR(total / kRuns, 30.0, 6.0);
}

TEST(RandomPairingTest, JaccardDerivedFromCommon) {
  RandomPairingConfig config;
  config.k = 500;
  RandomPairing method(config, 2);
  InsertRange(method, 0, 0, 40);
  InsertRange(method, 1, 0, 40);  // identical sets
  const PairEstimate est = method.EstimatePair(0, 1);
  EXPECT_NEAR(est.common, 40.0, 8.0);
  EXPECT_GT(est.jaccard, 0.75);
}

// --------------------------------------------------------------- BbitMinwise

TEST(BbitMinwiseTest, CollisionCorrectedEstimate) {
  BbitMinwiseConfig config;
  config.k = 800;
  config.b = 2;
  config.seed = 13;
  BbitMinwise method(config, 2, kItems);
  InsertRange(method, 0, 0, 200);
  InsertRange(method, 1, 100, 200);
  // True J = 1/3; the b-bit correction must de-bias the raw match rate
  // (raw ≈ C + (1-C)/3 ≈ 0.5 for b=2).
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 1.0 / 3.0, 0.10);
}

TEST(BbitMinwiseTest, LargeBehavesLikeMinHash) {
  BbitMinwiseConfig config;
  config.k = 256;
  config.b = 32;
  BbitMinwise method(config, 2, kItems);
  InsertRange(method, 0, 0, 50);
  InsertRange(method, 1, 0, 50);
  EXPECT_DOUBLE_EQ(method.EstimatePair(0, 1).jaccard, 1.0);
}

TEST(BbitMinwiseTest, MemoryModelIsKbBits) {
  BbitMinwiseConfig config;
  config.k = 100;
  config.b = 4;
  BbitMinwise method(config, 10, kItems);
  EXPECT_EQ(method.MemoryBits(), 100u * 4u * 10u);
  EXPECT_EQ(method.Name(), "b-bit(b=4)");
}

// ------------------------------------------------ deletion-bias comparison

TEST(DeletionBiasTest, SymmetricDeletionsBiasMinHashButNotOph) {
  // Identical sets, identical deletions: registers empty on both sides at
  // the same indices. MinHash's estimator divides matches by the fixed k,
  // so the vanished registers read as non-matches and Ĵ collapses toward
  // the surviving fraction (~0.5 here) although the true J stays 1. OPH's
  // denominator counts only bins occupied on at least one side, so it
  // remains exactly 1 — the two estimators fail differently, which is why
  // the paper analyzes them separately in §III.
  MinHashConfig mh_config;
  mh_config.k = 128;
  OphConfig oph_config;
  oph_config.k = 128;
  MinHash minhash(mh_config, 2, kItems);
  Oph oph(oph_config, 2, kItems);
  for (ItemId i = 0; i < 400; ++i) {
    for (UserId u : {0u, 1u}) {
      minhash.Update({u, i, Action::kInsert});
      oph.Update({u, i, Action::kInsert});
    }
  }
  for (ItemId i = 0; i < 200; ++i) {
    for (UserId u : {0u, 1u}) {
      minhash.Update({u, i, Action::kDelete});
      oph.Update({u, i, Action::kDelete});
    }
  }
  const double mh_j = minhash.EstimatePair(0, 1).jaccard;
  EXPECT_LT(mh_j, 0.75) << "true J is 1; MinHash reads surviving fraction";
  EXPECT_GT(mh_j, 0.25);
  EXPECT_DOUBLE_EQ(oph.EstimatePair(0, 1).jaccard, 1.0);
}

TEST(DeletionBiasTest, MinHashEstimateDependsOnDeletionHistory) {
  // The §III bias is *history dependence*: an emptied register refills with
  // whatever item arrives next, not with a uniform sample of the live set.
  // Two histories reaching the IDENTICAL final state:
  //   A (insertion-only): both users insert {200..399}; then u gets 1000,
  //     v gets 1001.
  //   B (with deletions): both insert {0..399}, both delete {0..199}, then
  //     u gets 1000, v gets 1001.
  // Final sets are equal in both histories (J = 200/202 ≈ 0.99), but in B
  // about half of each user's registers were emptied and refill with the
  // single fresh item (1000 vs 1001 — never matching), so Ĵ_B collapses
  // toward 0.5 while Ĵ_A stays near the truth.
  MinHashConfig config;
  config.k = 512;
  config.seed = 7;

  MinHash history_a(config, 2, kItems);
  for (ItemId i = 200; i < 400; ++i) {
    history_a.Update({0, i, Action::kInsert});
    history_a.Update({1, i, Action::kInsert});
  }
  history_a.Update({0, 1000, Action::kInsert});
  history_a.Update({1, 1001, Action::kInsert});

  MinHash history_b(config, 2, kItems);
  for (ItemId i = 0; i < 400; ++i) {
    history_b.Update({0, i, Action::kInsert});
    history_b.Update({1, i, Action::kInsert});
  }
  for (ItemId i = 0; i < 200; ++i) {
    history_b.Update({0, i, Action::kDelete});
    history_b.Update({1, i, Action::kDelete});
  }
  history_b.Update({0, 1000, Action::kInsert});
  history_b.Update({1, 1001, Action::kInsert});

  const double j_a = history_a.EstimatePair(0, 1).jaccard;
  const double j_b = history_b.EstimatePair(0, 1).jaccard;
  const double truth = 200.0 / 202.0;
  EXPECT_NEAR(j_a, truth, 0.05) << "insertion-only MinHash is unbiased";
  EXPECT_LT(j_b, 0.65) << "post-deletion refill collapses the estimate";
  EXPECT_GT(j_a - j_b, 0.25) << "estimate must depend on history (= bias)";
}

TEST(DeletionBiasTest, OphEstimateDependsOnDeletionHistory) {
  // OPH's bias needs bins holding several items (k ≪ |S|): deleting a
  // bin's sampled min discards the whole bin even though other live items
  // still map to it. Two histories to the same final state:
  //   final sets: S_u = {200..399} ∪ {1000..1049},
  //               S_v = {200..399} ∪ {2000..2049};
  //               s = 200, union = 300, J = 2/3.
  //   A: insert the final sets directly (unbiased estimate ≈ 2/3).
  //   B: both insert {0..399}, both delete {0..199} (half the bins empty
  //      on both sides), then each refills from its own disjoint fresh
  //      items — refilled bins can never match, dragging Ĵ down.
  OphConfig config;
  config.k = 64;
  config.seed = 9;

  Oph history_a(config, 2, kItems);
  for (ItemId i = 200; i < 400; ++i) {
    history_a.Update({0, i, Action::kInsert});
    history_a.Update({1, i, Action::kInsert});
  }
  for (ItemId i = 1000; i < 1050; ++i) {
    history_a.Update({0, i, Action::kInsert});
  }
  for (ItemId i = 2000; i < 2050; ++i) {
    history_a.Update({1, i, Action::kInsert});
  }

  Oph history_b(config, 2, kItems);
  for (ItemId i = 0; i < 400; ++i) {
    history_b.Update({0, i, Action::kInsert});
    history_b.Update({1, i, Action::kInsert});
  }
  for (ItemId i = 0; i < 200; ++i) {
    history_b.Update({0, i, Action::kDelete});
    history_b.Update({1, i, Action::kDelete});
  }
  for (ItemId i = 1000; i < 1050; ++i) {
    history_b.Update({0, i, Action::kInsert});
  }
  for (ItemId i = 2000; i < 2050; ++i) {
    history_b.Update({1, i, Action::kInsert});
  }

  const double truth = 200.0 / 300.0;
  const double j_a = history_a.EstimatePair(0, 1).jaccard;
  const double j_b = history_b.EstimatePair(0, 1).jaccard;
  EXPECT_NEAR(j_a, truth, 0.15) << "insertion-only OPH is unbiased";
  EXPECT_LT(j_b, truth - 0.15)
      << "deletion history must drag the OPH estimate down (= bias)";
}

}  // namespace
}  // namespace vos::baseline

// Unit tests for the HyperLogLog union baseline, including its documented
// deletion failure mode (registers cannot forget).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hll_union.h"

namespace vos::baseline {
namespace {

using stream::Action;
using stream::ItemId;
using stream::UserId;

HllUnionConfig TestConfig(uint32_t registers = 512, uint64_t seed = 7) {
  HllUnionConfig config;
  config.registers = registers;
  config.seed = seed;
  return config;
}

TEST(HllUnionTest, CardinalityEstimateIsAccurate) {
  HllUnion method(TestConfig(1024), 1);
  for (ItemId i = 0; i < 5000; ++i) method.Update({0, i, Action::kInsert});
  // Standard error ≈ 1.04/sqrt(1024) ≈ 3.3%; allow 4 sigma.
  EXPECT_NEAR(method.EstimateCardinality(0), 5000, 5000 * 0.13);
}

TEST(HllUnionTest, SmallRangeLinearCounting) {
  HllUnion method(TestConfig(256), 1);
  for (ItemId i = 0; i < 20; ++i) method.Update({0, i, Action::kInsert});
  EXPECT_NEAR(method.EstimateCardinality(0), 20, 5);
}

TEST(HllUnionTest, PairEstimateOnStaticSets) {
  // |S_u| = |S_v| = 1500, common 900 → union 2100, J = 900/2700·... =
  // 900 / 2100 ≈ 0.4286.
  HllUnion method(TestConfig(2048), 2);
  for (ItemId i = 0; i < 1500; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i < 900 ? i : i + 10000, Action::kInsert});
  }
  const auto est = method.EstimatePair(0, 1);
  // Union error ~2.3% of 2100 ≈ 48; common error the same in absolute
  // terms. Allow generous 4-sigma slack.
  EXPECT_NEAR(est.common, 900, 200);
  EXPECT_NEAR(est.jaccard, 900.0 / 2100.0, 0.12);
}

TEST(HllUnionTest, IdenticalAndDisjointSets) {
  HllUnion method(TestConfig(1024), 3);
  for (ItemId i = 0; i < 1000; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i, Action::kInsert});
    method.Update({2, 50000 + i, Action::kInsert});
  }
  EXPECT_GT(method.EstimatePair(0, 1).jaccard, 0.8);
  EXPECT_LT(method.EstimatePair(0, 2).jaccard, 0.15);
}

TEST(HllUnionTest, DeletionsUnderestimateCommonItems) {
  // The documented failure: delete most items from both users; the union
  // registers stay at their high-water mark, so ŝ = n_u + n_v − union
  // collapses (clamped at 0) although the surviving sets are identical.
  HllUnion method(TestConfig(1024), 4);
  for (ItemId i = 0; i < 2000; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i, Action::kInsert});
  }
  for (ItemId i = 200; i < 2000; ++i) {
    method.Update({0, i, Action::kDelete});
    method.Update({1, i, Action::kDelete});
  }
  // Truth: both sets = {0..199}, s = 200, J = 1.
  const auto est = method.EstimatePair(0, 1);
  EXPECT_LT(est.common, 40.0) << "stale union must crush the estimate";
  EXPECT_LT(est.jaccard, 0.2);
  EXPECT_EQ(method.Cardinality(0), 200u);  // counters do track deletions
}

TEST(HllUnionTest, MemoryModelAndName) {
  HllUnion method(TestConfig(256), 10);
  EXPECT_EQ(method.MemoryBits(), 256u * 8u * 10u);
  EXPECT_EQ(method.Name(), "HLL-union");
}

/// Register-count sweep: accuracy improves with registers (property-style).
class HllPrecisionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HllPrecisionTest, ErrorWithinTheoreticalBound) {
  const uint32_t registers = GetParam();
  HllUnion method(TestConfig(registers, 100 + registers), 1);
  constexpr ItemId kTrue = 20000;
  for (ItemId i = 0; i < kTrue; ++i) method.Update({0, i, Action::kInsert});
  const double relative_error =
      std::fabs(method.EstimateCardinality(0) - kTrue) / kTrue;
  // 1.04/sqrt(m) standard error; accept 4 sigma.
  EXPECT_LT(relative_error, 4 * 1.04 / std::sqrt(registers));
}

INSTANTIATE_TEST_SUITE_P(Registers, HllPrecisionTest,
                         ::testing::Values(64, 256, 1024, 4096));

}  // namespace
}  // namespace vos::baseline

// Tests for the batch query engine: the word-span popcount kernels,
// DigestMatrix extraction, and the SimilarityIndex batch paths, which must
// be bit-identical to the scalar reference implementation for every thread
// count, block size, and prefilter setting.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "common/popcount.h"
#include "common/random.h"
#include "core/digest_matrix.h"
#include "core/similarity_index.h"
#include "core/vos_method.h"
#include "core/vos_sketch.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

VosConfig TestConfig(uint32_t k = 512, uint64_t m = 1 << 14,
                     uint64_t seed = 101) {
  VosConfig config;
  config.k = k;
  config.m = m;
  config.seed = seed;
  return config;
}

/// A feasible insertion-only workload with planted near-duplicate pairs
/// so thresholded queries return hits. (`seed` reserved for future
/// workload variants; the layout itself is deterministic.)
VosSketch PopulatedSketch(const VosConfig& config, UserId users,
                          size_t edges_per_user, uint64_t seed) {
  (void)seed;
  VosSketch sketch(config, users);
  for (UserId u = 0; u < users; ++u) {
    // Users 4t and 4t+1 share ~80% of their items (near-duplicates);
    // everyone else is essentially disjoint.
    const uint64_t base = (u % 4 <= 1) ? (u / 4) * 1000000 : u * 1000000;
    for (size_t i = 0; i < edges_per_user; ++i) {
      const bool shared = (u % 4 <= 1) && i < edges_per_user * 8 / 10;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 500000 + (u % 4) * 100000 + i);
      sketch.Update({u, item, Action::kInsert});
    }
  }
  return sketch;
}

std::vector<UserId> AllUsers(UserId count) {
  std::vector<UserId> users;
  for (UserId u = 0; u < count; ++u) users.push_back(u);
  return users;
}

// ----------------------------------------------------------- popcount kernels

TEST(PopcountKernelTest, XorPopcountMatchesBitVectorHamming) {
  Rng rng(7);
  for (size_t num_bits : {1u, 63u, 64u, 65u, 200u, 256u, 511u, 6400u}) {
    const size_t words = (num_bits + 63) / 64;
    BitVector a(num_bits), b(num_bits);
    for (size_t pos = 0; pos < num_bits; ++pos) {
      if (rng.NextBernoulli(0.4)) a.Flip(pos);
      if (rng.NextBernoulli(0.3)) b.Flip(pos);
    }
    EXPECT_EQ(XorPopcount(a.words().data(), b.words().data(), words),
              a.HammingDistance(b))
        << "num_bits=" << num_bits;
  }
}

TEST(PopcountKernelTest, PopcountWordsMatchesOnes) {
  Rng rng(9);
  BitVector v(1000);
  for (size_t pos = 0; pos < 1000; ++pos) {
    if (rng.NextBernoulli(0.5)) v.Flip(pos);
  }
  EXPECT_EQ(PopcountWords(v.words().data(), v.words().size()), v.ones());
}

// ----------------------------------------------------------------- f-seed cache

TEST(FSeedCacheTest, TableMatchesCellOfAndIsDeterministic) {
  VosSketch sketch(TestConfig(), 10);
  VosSketch twin(TestConfig(), 10);
  ASSERT_EQ(sketch.f_seed_table().size(), sketch.config().k);
  EXPECT_EQ(sketch.f_seed_table(), twin.f_seed_table());
  for (uint32_t j : {0u, 1u, 255u, 511u}) {
    EXPECT_EQ(sketch.CellOf(3, j),
              hash::ReduceToRange(
                  hash::Hash64(3, sketch.f_seed_table()[j]),
                  sketch.config().m));
  }
  // Snapshot copies share the cache and keep answering identically.
  const VosSketch copy = sketch;
  EXPECT_EQ(&copy.f_seed_table(), &sketch.f_seed_table());
  EXPECT_EQ(copy.CellOf(7, 100), sketch.CellOf(7, 100));
}

// ----------------------------------------------------------------- DigestMatrix

TEST(DigestMatrixTest, RowsBitIdenticalToExtractUserSketch) {
  for (uint32_t k : {64u, 100u, 512u}) {  // word-aligned and padded rows
    const VosSketch sketch =
        PopulatedSketch(TestConfig(k, 1 << 14, 5), 24, 50, 3);
    const auto users = AllUsers(24);
    for (unsigned threads : {1u, 2u, 8u}) {
      const DigestMatrix matrix = DigestMatrix::Build(sketch, users, threads);
      ASSERT_EQ(matrix.rows(), users.size());
      ASSERT_EQ(matrix.k(), k);
      for (size_t i = 0; i < users.size(); ++i) {
        EXPECT_TRUE(matrix.RowAsBitVector(i) ==
                    sketch.ExtractUserSketch(users[i]))
            << "k=" << k << " threads=" << threads << " row=" << i;
      }
    }
  }
}

TEST(DigestMatrixTest, SingleRowExtractionMatchesBuild) {
  const VosSketch sketch = PopulatedSketch(TestConfig(200), 8, 40, 11);
  const auto users = AllUsers(8);
  const DigestMatrix matrix = DigestMatrix::Build(sketch, users, 1);
  std::vector<uint64_t> row(DigestMatrix::WordsPerRow(200), ~uint64_t{0});
  DigestMatrix::ExtractRow(sketch, 5, row.data());
  for (size_t w = 0; w < row.size(); ++w) {
    EXPECT_EQ(row[w], matrix.Row(5)[w]) << "word " << w;
  }
}

TEST(DigestMatrixTest, EmptyAndClear) {
  const VosSketch sketch(TestConfig(), 4);
  DigestMatrix matrix = DigestMatrix::Build(sketch, {}, 4);
  EXPECT_TRUE(matrix.empty());
  matrix = DigestMatrix::Build(sketch, {1, 2}, 2);
  EXPECT_EQ(matrix.rows(), 2u);
  matrix.Clear();
  EXPECT_TRUE(matrix.empty());
  EXPECT_EQ(matrix.MemoryBytes(), 0u);
}

// ----------------------------------------------------- batch vs reference

void ExpectEntriesIdentical(const std::vector<SimilarityIndex::Entry>& a,
                            const std::vector<SimilarityIndex::Entry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user) << "entry " << i;
    EXPECT_EQ(a[i].common, b[i].common) << "entry " << i;  // bit-identical
    EXPECT_EQ(a[i].jaccard, b[i].jaccard) << "entry " << i;
  }
}

void ExpectPairsIdentical(const std::vector<SimilarityIndex::Pair>& a,
                          const std::vector<SimilarityIndex::Pair>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].u, b[i].u) << "pair " << i;
    EXPECT_EQ(a[i].v, b[i].v) << "pair " << i;
    EXPECT_EQ(a[i].common, b[i].common) << "pair " << i;  // bit-identical
    EXPECT_EQ(a[i].jaccard, b[i].jaccard) << "pair " << i;
  }
}

TEST(SimilarityIndexBatchTest, TopKIdenticalToReferenceAcrossThreadCounts) {
  const VosSketch sketch =
      PopulatedSketch(TestConfig(512, 1 << 15, 17), 60, 80, 21);
  for (unsigned threads : {1u, 2u, 8u}) {
    for (size_t block : {1u, 7u, 128u}) {
      QueryOptions options;
      options.num_threads = threads;
      options.block_size = block;
      SimilarityIndex index(sketch, {}, options);
      index.Rebuild(AllUsers(60));
      for (UserId query : {0u, 1u, 59u}) {  // candidates
        ExpectEntriesIdentical(index.TopK(query, 10),
                               index.TopKReference(query, 10));
      }
      // Full ranking, and k beyond the candidate count.
      ExpectEntriesIdentical(index.TopK(0, 1000),
                             index.TopKReference(0, 1000));
    }
  }
}

TEST(SimilarityIndexBatchTest, TopKNonCandidateQueryExtractsLive) {
  const VosSketch sketch =
      PopulatedSketch(TestConfig(512, 1 << 15, 19), 40, 60, 23);
  SimilarityIndex index(sketch);
  index.Rebuild(AllUsers(20));  // users 20..39 are not candidates
  ExpectEntriesIdentical(index.TopK(25, 8), index.TopKReference(25, 8));
  EXPECT_EQ(index.TopK(25, 8).size(), 8u);
}

TEST(SimilarityIndexBatchTest, TopKReusesSnapshotRowForCandidateQuery) {
  VosSketch sketch(TestConfig(2048, 1 << 16, 29), 4);
  for (ItemId i = 0; i < 50; ++i) {
    sketch.Update({0, i, Action::kInsert});
    sketch.Update({1, i, Action::kInsert});
  }
  SimilarityIndex index(sketch);
  index.Rebuild({0, 1});
  const double before = index.TopK(0, 1)[0].jaccard;
  EXPECT_GT(before, 0.8);

  // Mutate the sketch: user 0 (the query!) unsubscribes everything. With
  // snapshot row reuse the answer must not move until Rebuild.
  for (ItemId i = 0; i < 50; ++i) sketch.Update({0, i, Action::kDelete});
  EXPECT_EQ(index.TopK(0, 1)[0].jaccard, before);
  index.Rebuild({0, 1});
  EXPECT_LT(index.TopK(0, 1)[0].jaccard, 0.25);
}

TEST(SimilarityIndexBatchTest, AllPairsIdenticalAcrossThreadsAndBlocks) {
  const VosSketch sketch =
      PopulatedSketch(TestConfig(512, 1 << 15, 31), 60, 80, 37);
  QueryOptions reference_options;
  reference_options.num_threads = 1;
  SimilarityIndex reference_index(sketch, {}, reference_options);
  reference_index.Rebuild(AllUsers(60));

  for (double tau : {0.0, 0.2, 0.5, 0.9}) {
    const auto expected = reference_index.AllPairsAboveReference(tau);
    for (unsigned threads : {1u, 2u, 8u}) {
      for (size_t block : {1u, 16u, 4096u}) {
        QueryOptions options;
        options.num_threads = threads;
        options.block_size = block;
        SimilarityIndex index(sketch, {}, options);
        index.Rebuild(AllUsers(60));
        ExpectPairsIdentical(index.AllPairsAbove(tau), expected);
      }
    }
  }
}

TEST(SimilarityIndexBatchTest, PrefilterOnOffIdenticalIncludingBoundary) {
  const VosSketch sketch =
      PopulatedSketch(TestConfig(1024, 1 << 16, 41), 48, 100, 43);
  QueryOptions with, without;
  with.prefilter = true;
  without.prefilter = false;
  SimilarityIndex filtered(sketch, {}, with);
  SimilarityIndex unfiltered(sketch, {}, without);
  filtered.Rebuild(AllUsers(48));
  unfiltered.Rebuild(AllUsers(48));

  std::vector<double> thresholds = {0.0, 0.1, 0.3, 0.6, 0.95};
  // Exact-boundary thresholds: re-query at every returned Ĵ value; each
  // pair sits exactly on τ and must survive both engines.
  for (const auto& pair : unfiltered.AllPairsAbove(0.05)) {
    thresholds.push_back(pair.jaccard);
  }
  for (double tau : thresholds) {
    ExpectPairsIdentical(filtered.AllPairsAbove(tau),
                         unfiltered.AllPairsAbove(tau));
    ExpectPairsIdentical(filtered.AllPairsAbove(tau),
                         filtered.AllPairsAboveReference(tau));
  }
}

TEST(SimilarityIndexBatchTest, SortedSweepIdenticalOnSkewedCardinalities) {
  // Heavy-tailed set sizes exercise the cardinality-sorted window break:
  // most pairs are skipped before the popcount, and none of the skips may
  // change the result.
  VosSketch sketch(TestConfig(1024, 1 << 16, 73), 50);
  for (UserId u = 0; u < 50; ++u) {
    const size_t edges = 5 + 500 / (1 + u % 17);  // sizes 5..505, repeated
    for (size_t i = 0; i < edges; ++i) {
      // Users with equal (u % 17) share a prefix of items, so some skewed
      // pairs really are similar and some boundary pairs have min ≈ τ·max.
      const ItemId item = static_cast<ItemId>(
          i < edges / 2 ? (u % 17) * 100000 + i : u * 100000 + 50000 + i);
      sketch.Update({u, item, Action::kInsert});
    }
  }
  QueryOptions with, without;
  with.prefilter = true;
  with.num_threads = 4;
  with.block_size = 8;
  without.prefilter = false;
  without.num_threads = 1;
  SimilarityIndex filtered(sketch, {}, with);
  SimilarityIndex unfiltered(sketch, {}, without);
  filtered.Rebuild(AllUsers(50));
  unfiltered.Rebuild(AllUsers(50));
  std::vector<double> thresholds = {0.05, 0.3, 0.5, 0.8};
  for (const auto& pair : unfiltered.AllPairsAbove(0.01)) {
    thresholds.push_back(pair.jaccard);  // exact boundaries
  }
  for (double tau : thresholds) {
    ExpectPairsIdentical(filtered.AllPairsAbove(tau),
                         unfiltered.AllPairsAbove(tau));
    ExpectPairsIdentical(filtered.AllPairsAbove(tau),
                         unfiltered.AllPairsAboveReference(tau));
  }
}

TEST(SimilarityIndexBatchTest, AllPairsFindsPlantedDuplicates) {
  const VosSketch sketch =
      PopulatedSketch(TestConfig(4096, 1 << 18, 47), 40, 100, 51);
  SimilarityIndex index(sketch);
  index.Rebuild(AllUsers(40));
  const auto pairs = index.AllPairsAbove(0.5);
  // Ten planted clusters {4t, 4t+1} with true J = 0.8/1.2 ≈ 0.67.
  ASSERT_EQ(pairs.size(), 10u);
  std::unordered_set<UserId> seen;
  for (const auto& pair : pairs) {
    EXPECT_EQ(pair.u % 4, 0u);
    EXPECT_EQ(pair.v, pair.u + 1);
    EXPECT_GT(pair.jaccard, 0.5);
    seen.insert(pair.u);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SimilarityIndexBatchTest, EmptyAndSingletonCandidateSets) {
  const VosSketch sketch = PopulatedSketch(TestConfig(), 8, 20, 53);
  SimilarityIndex index(sketch);
  EXPECT_TRUE(index.TopK(0, 5).empty());  // before any Rebuild
  index.Rebuild({});
  EXPECT_TRUE(index.TopK(0, 5).empty());
  EXPECT_TRUE(index.AllPairsAbove(0.0).empty());
  index.Rebuild({3});
  EXPECT_TRUE(index.AllPairsAbove(0.0).empty());
  EXPECT_TRUE(index.TopK(3, 5).empty());  // only candidate is the query
}

// ------------------------------------------------------- VosMethod fast path

TEST(VosMethodBatchCacheTest, MixedCachedAndUncachedPairsMatchDirect) {
  const VosConfig config = TestConfig(512, 1 << 15, 61);
  VosMethod cached(config, 30);
  VosMethod direct(config, 30);
  Rng rng(71);
  for (int i = 0; i < 2000; ++i) {
    const Element e{static_cast<UserId>(rng.NextBounded(30)),
                    static_cast<ItemId>(1000000 + i), Action::kInsert};
    cached.Update(e);
    direct.Update(e);
  }
  cached.SetQueryThreads(2);
  cached.PrepareQuery({0, 1, 2, 3, 4});
  for (UserId u = 0; u < 6; ++u) {    // user 5 is uncached
    for (UserId v = u + 1; v < 7; ++v) {  // user 6 is uncached
      const PairEstimate a = cached.EstimatePair(u, v);
      const PairEstimate b = direct.EstimatePair(u, v);
      EXPECT_EQ(a.common, b.common) << u << "," << v;  // bit-identical
      EXPECT_EQ(a.jaccard, b.jaccard) << u << "," << v;
    }
  }
  cached.InvalidateQueryCache();
  EXPECT_EQ(cached.EstimatePair(0, 1).common, direct.EstimatePair(0, 1).common);
}

}  // namespace
}  // namespace vos::core

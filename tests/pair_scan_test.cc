// Tests for the shared tiled pair-scan tier (core/pair_scan.h).
//
// The tier's contract has two halves:
//
//   * The EXACT tiled path is bit-identical to the scalar references in
//     both call sites — SimilarityIndex::AllPairsAbove and
//     QueryPlanner::AllPairsAbove — for every tile size (1 row, the
//     default, whole-pass), thread count, shard count and prefilter
//     setting. Tiles repartition the enumeration; they must never change
//     a single bit of the output.
//
//   * The BANDED path (QueryOptions::banding_bands > 0) returns a subset
//     of the exact result whose surviving pairs carry bit-identical
//     estimates (precision 1 by construction), with recall measurable
//     against the exact pass — asserted here against a planted-overlap
//     floor on a community stream.
//
// Also covered: BandingTable candidate generation against brute force,
// band-count clamping, and the TopK warm-start (explicit seed and
// planner-held), which must be bit-identical to a cold start whether the
// seed is loose, exact, or over-tight (the over-pruned case must fall
// back to a cold rerun).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/digest_matrix.h"
#include "core/pair_scan.h"
#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_method.h"
#include "core/vos_sketch.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Community stream with planted pairs: every 4-user group's first two
/// members share 75% of their items (J ≈ 0.6 planted hits in and across
/// shards), everyone else is disjoint; ~20% of inserts get a matching
/// delete so the dynamic path is exercised too.
std::vector<Element> CommunityStream(UserId users, size_t items_per_user,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    const bool clustered = u % 4 <= 1;
    const uint64_t base = clustered ? (u / 4) * uint64_t{100000}
                                    : 10000000 + u * uint64_t{100000};
    for (size_t i = 0; i < items_per_user; ++i) {
      const bool shared = clustered && i < items_per_user * 3 / 4;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 50000 + (u % 4) * 10000 + i);
      elements.push_back({u, item, Action::kInsert});
      if (!shared && rng.NextBernoulli(0.2)) {
        elements.push_back({u, item, Action::kDelete});
        elements.push_back({u, item + 7000, Action::kInsert});
      }
    }
  }
  return elements;
}

VosConfig IndexConfig(uint32_t k = 512, uint64_t m = 1 << 16) {
  VosConfig config;
  config.k = k;
  config.m = m;
  config.seed = 29;
  return config;
}

ShardedVosConfig PlannerConfig(uint32_t shards) {
  ShardedVosConfig config;
  config.base = IndexConfig();
  config.base.seed = 31;
  config.num_shards = shards;
  return config;
}

template <typename PairT>
void ExpectPairsIdentical(const std::vector<PairT>& got,
                          const std::vector<PairT>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, want[i].u) << context << " pair " << i;
    EXPECT_EQ(got[i].v, want[i].v) << context << " pair " << i;
    EXPECT_EQ(got[i].common, want[i].common) << context << " pair " << i;
    EXPECT_EQ(got[i].jaccard, want[i].jaccard) << context << " pair " << i;
  }
}

void ExpectEntriesIdentical(const std::vector<scan::Entry>& got,
                            const std::vector<scan::Entry>& want,
                            const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].user, want[i].user) << context << " entry " << i;
    EXPECT_EQ(got[i].common, want[i].common) << context << " entry " << i;
    EXPECT_EQ(got[i].jaccard, want[i].jaccard) << context << " entry " << i;
  }
}

/// The acceptance matrix on the single global index: tile sizes
/// {1 row, tier default, whole-pass} × threads {1, 8} × prefilter
/// {on, off}, all bit-identical to the scalar reference.
TEST(PairScanTest, IndexBitIdenticalAcrossTileSizesThreadsPrefilter) {
  const UserId users = 90;
  const std::vector<Element> elements = CommunityStream(users, 60, 3);
  VosSketch sketch(IndexConfig(), users);
  for (const Element& e : elements) sketch.Update(e);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  std::vector<SimilarityIndex::Pair> reference;
  {
    SimilarityIndex probe(sketch);
    probe.Rebuild(candidates);
    reference = probe.AllPairsAboveReference(0.4);
  }
  ASSERT_FALSE(reference.empty()) << "stream must plant pairs above τ";

  for (const size_t tile_rows : {size_t{1}, size_t{0}, size_t{1} << 20}) {
    for (const unsigned threads : {1u, 8u}) {
      for (const bool prefilter : {true, false}) {
        QueryOptions options;
        options.tile_rows = tile_rows;
        options.num_threads = threads;
        options.prefilter = prefilter;
        SimilarityIndex index(sketch, {}, options);
        index.Rebuild(candidates);
        ExpectPairsIdentical(index.AllPairsAbove(0.4), reference,
                             "tile_rows=" + std::to_string(tile_rows) +
                                 " threads=" + std::to_string(threads) +
                                 " prefilter=" + std::to_string(prefilter));
      }
    }
  }
}

/// The acceptance matrix on the planner: tile sizes {1 row, default,
/// whole-pass} × threads {1, 8} × S ∈ {1, 4}, bit-identical to the
/// per-pair EstimatePair reference (same-shard AND cross-shard passes go
/// through the tier's triangle and rectangle tiles respectively).
TEST(PairScanTest, PlannerBitIdenticalAcrossTileSizesThreadsShards) {
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 60, 5);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  for (const uint32_t shards : {1u, 4u}) {
    ShardedVosSketch sketch(PlannerConfig(shards), users);
    sketch.UpdateBatch(elements.data(), elements.size());
    std::vector<QueryPlanner::Pair> reference;
    {
      QueryPlanner probe(sketch);
      probe.Rebuild(candidates);
      reference = probe.AllPairsAboveReference(0.4);
    }
    ASSERT_FALSE(reference.empty()) << "shards=" << shards;

    for (const size_t tile_rows : {size_t{1}, size_t{0}, size_t{1} << 20}) {
      for (const unsigned threads : {1u, 8u}) {
        QueryOptions options;
        options.tile_rows = tile_rows;
        options.num_threads = threads;
        QueryPlanner planner(sketch, {}, options);
        planner.Rebuild(candidates);
        ExpectPairsIdentical(planner.AllPairsAbove(0.4), reference,
                             "shards=" + std::to_string(shards) +
                                 " tile_rows=" + std::to_string(tile_rows) +
                                 " threads=" + std::to_string(threads));
      }
    }
  }
}

// ------------------------------------------------------ banding tables

uint64_t ReferenceBandKey(const DigestMatrix& matrix, size_t row,
                          uint32_t band, uint32_t rows_per_band) {
  uint64_t key = 0;
  for (uint32_t j = 0; j < rows_per_band; ++j) {
    const uint32_t bit = band * rows_per_band + j;
    const uint64_t word = matrix.Row(row)[bit >> 6];
    key |= ((word >> (bit & 63)) & 1) << j;
  }
  return key;
}

DigestMatrix RandomMatrix(uint32_t k, size_t rows, uint64_t seed) {
  DigestMatrix matrix(k, rows);
  Rng rng(seed);
  const size_t words = DigestMatrix::WordsPerRow(k);
  for (size_t r = 0; r < rows; ++r) {
    uint64_t* row = matrix.MutableRow(r);
    for (size_t w = 0; w < words; ++w) {
      // Sparse-ish rows so band-key collisions actually occur.
      row[w] = rng.NextU64() & rng.NextU64() & rng.NextU64();
    }
    const uint32_t tail = k & 63;
    if (tail != 0) row[words - 1] &= (uint64_t{1} << tail) - 1;
  }
  return matrix;
}

TEST(PairScanTest, BandingTriangleCandidatesMatchBruteForce) {
  const uint32_t k = 192;
  const uint32_t bands = 6;
  const uint32_t rows_per_band = 7;  // spans word boundaries at band 9*7=63
  const size_t rows = 40;
  const DigestMatrix matrix = RandomMatrix(k, rows, 77);
  const pair_scan::BandingTable table(matrix, bands, rows_per_band);
  ASSERT_EQ(table.bands(), bands);

  std::vector<std::pair<uint32_t, uint32_t>> expected;
  for (uint32_t p = 0; p < rows; ++p) {
    for (uint32_t q = p + 1; q < rows; ++q) {
      for (uint32_t b = 0; b < bands; ++b) {
        if (ReferenceBandKey(matrix, p, b, rows_per_band) ==
            ReferenceBandKey(matrix, q, b, rows_per_band)) {
          expected.push_back({p, q});
          break;
        }
      }
    }
  }
  const auto got = table.TriangleCandidates();
  ASSERT_FALSE(got.empty()) << "sparse rows must collide somewhere";
  EXPECT_EQ(got, expected);
}

TEST(PairScanTest, BandingRectangleCandidatesMatchBruteForce) {
  const uint32_t k = 192;
  const uint32_t bands = 8;
  const uint32_t rows_per_band = 6;
  const DigestMatrix ma = RandomMatrix(k, 30, 78);
  const DigestMatrix mb = RandomMatrix(k, 26, 79);
  const pair_scan::BandingTable ta(ma, bands, rows_per_band);
  const pair_scan::BandingTable tb(mb, bands, rows_per_band);

  std::vector<std::pair<uint32_t, uint32_t>> expected;
  for (uint32_t p = 0; p < ma.rows(); ++p) {
    for (uint32_t q = 0; q < mb.rows(); ++q) {
      for (uint32_t b = 0; b < bands; ++b) {
        if (ReferenceBandKey(ma, p, b, rows_per_band) ==
            ReferenceBandKey(mb, q, b, rows_per_band)) {
          expected.push_back({p, q});
          break;
        }
      }
    }
  }
  std::sort(expected.begin(), expected.end());
  const auto got = pair_scan::BandingTable::RectangleCandidates(ta, tb);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got, expected);
}

TEST(PairScanTest, BandingClampsBandCountToDigest) {
  const DigestMatrix matrix = RandomMatrix(512, 8, 80);
  const pair_scan::BandingTable table(matrix, 1000, 64);
  EXPECT_EQ(table.bands(), 512u / 64u);  // bands · rows_per_band ≤ k
  const pair_scan::BandingTable exact_fit(matrix, 64, 8);
  EXPECT_EQ(exact_fit.bands(), 64u);
}

// ------------------------------------------- banded scans: the contract

/// Banded result ⊆ exact result with bit-identical estimates (precision
/// 1), and recall over the exact pass ≥ the planted-overlap floor — on
/// the single index.
TEST(PairScanTest, IndexBandingSubsetExactEstimatesAndRecallFloor) {
  const UserId users = 96;
  const std::vector<Element> elements = CommunityStream(users, 60, 9);
  VosSketch sketch(IndexConfig(), users);
  for (const Element& e : elements) sketch.Update(e);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  SimilarityIndex exact(sketch);
  exact.Rebuild(candidates);
  const auto exact_pairs = exact.AllPairsAbove(0.4);
  ASSERT_GE(exact_pairs.size(), users / 6)
      << "most 4-user groups plant a pair above τ";

  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 4;
  banded_options.num_threads = 4;
  SimilarityIndex banded(sketch, {}, banded_options);
  banded.Rebuild(candidates);
  ASSERT_NE(banded.banding_table(), nullptr);
  const auto banded_pairs = banded.AllPairsAbove(0.4);

  std::map<std::pair<UserId, UserId>, std::pair<double, double>> exact_by_pair;
  for (const auto& pair : exact_pairs) {
    exact_by_pair[{pair.u, pair.v}] = {pair.common, pair.jaccard};
  }
  for (const auto& pair : banded_pairs) {
    const auto it = exact_by_pair.find({pair.u, pair.v});
    ASSERT_NE(it, exact_by_pair.end())
        << "banded pair (" << pair.u << "," << pair.v
        << ") not in the exact result — precision must be 1";
    EXPECT_EQ(pair.common, it->second.first);
    EXPECT_EQ(pair.jaccard, it->second.second);
  }
  const double recall = static_cast<double>(banded_pairs.size()) /
                        static_cast<double>(exact_pairs.size());
  EXPECT_GE(recall, 0.9) << "banded recall below the planted-overlap floor ("
                         << banded_pairs.size() << "/" << exact_pairs.size()
                         << ")";
}

/// Same contract through the planner at S = 4: the banded cross-shard
/// rectangles merge-join two shards' tables, and the union over all
/// passes must still be a subset-with-identical-estimates of the exact
/// planner result, above the same recall floor.
TEST(PairScanTest, PlannerBandingSubsetExactEstimatesAndRecallFloor) {
  const UserId users = 96;
  const std::vector<Element> elements = CommunityStream(users, 60, 9);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryPlanner exact(sketch);
  exact.Rebuild(candidates);
  const auto exact_pairs = exact.AllPairsAbove(0.4);
  ASSERT_GE(exact_pairs.size(), users / 6);
  const bool has_cross = std::any_of(
      exact_pairs.begin(), exact_pairs.end(), [&](const QueryPlanner::Pair& p) {
        return sketch.ShardOf(p.u) != sketch.ShardOf(p.v);
      });
  ASSERT_TRUE(has_cross) << "floor must cover cross-shard rectangles too";

  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 4;
  banded_options.num_threads = 4;
  QueryPlanner banded(sketch, {}, banded_options);
  banded.Rebuild(candidates);
  const auto banded_pairs = banded.AllPairsAbove(0.4);

  std::map<std::pair<UserId, UserId>, std::pair<double, double>> exact_by_pair;
  for (const auto& pair : exact_pairs) {
    exact_by_pair[{pair.u, pair.v}] = {pair.common, pair.jaccard};
  }
  size_t banded_cross = 0;
  for (const auto& pair : banded_pairs) {
    const auto it = exact_by_pair.find({pair.u, pair.v});
    ASSERT_NE(it, exact_by_pair.end())
        << "banded planner pair (" << pair.u << "," << pair.v
        << ") not in the exact result";
    EXPECT_EQ(pair.common, it->second.first);
    EXPECT_EQ(pair.jaccard, it->second.second);
    if (sketch.ShardOf(pair.u) != sketch.ShardOf(pair.v)) ++banded_cross;
  }
  EXPECT_GT(banded_cross, 0u) << "banded rectangles must surface pairs";
  const double recall = static_cast<double>(banded_pairs.size()) /
                        static_cast<double>(exact_pairs.size());
  EXPECT_GE(recall, 0.9) << banded_pairs.size() << "/" << exact_pairs.size();
}

/// Banding only changes enumeration; RefreshDirty must rebuild the table
/// so post-churn banded scans keep the subset/identical-estimate
/// contract against a post-churn exact scan.
TEST(PairScanTest, BandingTableSurvivesIncrementalRefresh) {
  const UserId users = 64;
  const std::vector<Element> elements = CommunityStream(users, 50, 21);
  VosConfig config = IndexConfig();
  config.track_dirty = true;
  VosSketch sketch(config, users);
  for (const Element& e : elements) sketch.Update(e);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  options.incremental = true;
  SimilarityIndex banded(sketch, {}, options);
  banded.Rebuild(candidates);

  ItemId next_item = 1 << 29;
  for (const UserId touched : {UserId{0}, UserId{17}}) {
    sketch.Update({touched, next_item++, Action::kInsert});
    sketch.Update({touched, next_item++, Action::kInsert});
  }
  EXPECT_TRUE(banded.RefreshDirty());
  ASSERT_NE(banded.banding_table(), nullptr);

  SimilarityIndex exact(sketch);
  exact.Rebuild(candidates);
  const auto exact_pairs = exact.AllPairsAbove(0.4);
  std::map<std::pair<UserId, UserId>, std::pair<double, double>> exact_by_pair;
  for (const auto& pair : exact_pairs) {
    exact_by_pair[{pair.u, pair.v}] = {pair.common, pair.jaccard};
  }
  const auto banded_pairs = banded.AllPairsAbove(0.4);
  ASSERT_FALSE(banded_pairs.empty());
  for (const auto& pair : banded_pairs) {
    const auto it = exact_by_pair.find({pair.u, pair.v});
    ASSERT_NE(it, exact_by_pair.end())
        << "stale banding table after refresh: pair (" << pair.u << ","
        << pair.v << ")";
    EXPECT_EQ(pair.common, it->second.first);
    EXPECT_EQ(pair.jaccard, it->second.second);
  }
}

/// The factory-knob path into the tier: VosMethod::MakeIndex must build
/// its snapshot with the method's QueryOptions, so tile_rows and
/// banding_* configured at construction govern the scans (tiled exact
/// path bit-identical; banded path a subset with identical estimates).
TEST(PairScanTest, VosMethodMakeIndexHonorsTileAndBandingKnobs) {
  const UserId users = 64;
  const std::vector<Element> elements = CommunityStream(users, 50, 27);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryOptions tiled_options;
  tiled_options.tile_rows = 7;  // deliberately odd: many partial tiles
  VosMethod tiled_method(IndexConfig(), users, {}, tiled_options);
  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 4;
  VosMethod banded_method(IndexConfig(), users, {}, banded_options);
  VosMethod plain_method(IndexConfig(), users);
  for (const Element& e : elements) {
    tiled_method.Update(e);
    banded_method.Update(e);
    plain_method.Update(e);
  }

  const auto plain = plain_method.MakeIndex(candidates);
  EXPECT_EQ(plain->banding_table(), nullptr);
  const auto exact_pairs = plain->AllPairsAbove(0.4);
  ASSERT_FALSE(exact_pairs.empty());

  const auto tiled = tiled_method.MakeIndex(candidates);
  EXPECT_EQ(tiled->query_options().tile_rows, 7u);
  ExpectPairsIdentical(tiled->AllPairsAbove(0.4), exact_pairs,
                       "MakeIndex tile_rows=7");

  const auto banded = banded_method.MakeIndex(candidates);
  ASSERT_NE(banded->banding_table(), nullptr);
  std::map<std::pair<UserId, UserId>, std::pair<double, double>> exact_by_pair;
  for (const auto& pair : exact_pairs) {
    exact_by_pair[{pair.u, pair.v}] = {pair.common, pair.jaccard};
  }
  const auto banded_pairs = banded->AllPairsAbove(0.4);
  ASSERT_FALSE(banded_pairs.empty());
  for (const auto& pair : banded_pairs) {
    const auto it = exact_by_pair.find({pair.u, pair.v});
    ASSERT_NE(it, exact_by_pair.end());
    EXPECT_EQ(pair.common, it->second.first);
    EXPECT_EQ(pair.jaccard, it->second.second);
  }
}

// ------------------------------------------------- TopK warm start

/// Explicit warm seeds — loose, exact (the true k-th best), and
/// over-tight (forces the verified cold rerun) — must all return results
/// bit-identical to a cold start.
TEST(PairScanTest, TopKWarmThresholdIdenticalToColdStart) {
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 50, 23);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryPlanner cold(sketch);
  cold.Rebuild(candidates);
  const size_t k = 8;
  const UserId query = 0;
  const auto cold_result = cold.TopK(query, k);
  ASSERT_EQ(cold_result.size(), k);
  const double kth_best = cold_result.back().jaccard;

  for (const double seed : {0.01, kth_best, 0.99}) {
    for (const unsigned threads : {1u, 8u}) {
      QueryOptions options;
      options.topk_warm_threshold = seed;
      options.num_threads = threads;
      QueryPlanner warm(sketch, {}, options);
      warm.Rebuild(candidates);
      ExpectEntriesIdentical(warm.TopK(query, k), cold_result,
                             "seed=" + std::to_string(seed) +
                                 " threads=" + std::to_string(threads));
    }
  }
}

/// Planner-held warm start (QueryOptions::topk_warm_start): the second
/// call seeds from the first's k-th best and must stay bit-identical —
/// including after churn drives the data below the remembered bound
/// (the verification catches the over-prune and reruns cold).
TEST(PairScanTest, TopKPlannerWarmStartIdenticalAcrossCheckpoints) {
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 50, 25);
  ShardedVosConfig config = PlannerConfig(4);
  config.base.track_dirty = true;
  ShardedVosSketch sketch(config, users);
  sketch.UpdateBatch(elements.data(), elements.size());
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryOptions warm_options;
  warm_options.topk_warm_start = true;
  warm_options.incremental = true;
  QueryPlanner warm(sketch, {}, warm_options);
  warm.Rebuild(candidates);

  QueryOptions cold_options;
  cold_options.incremental = true;
  QueryPlanner cold(sketch, {}, cold_options);
  cold.Rebuild(candidates);

  const size_t k = 6;
  const UserId query = 1;  // clustered: has strong planted neighbours
  // First call is cold inside the warm planner; second is warm-seeded.
  ExpectEntriesIdentical(warm.TopK(query, k), cold.TopK(query, k),
                         "checkpoint 0");
  ExpectEntriesIdentical(warm.TopK(query, k), cold.TopK(query, k),
                         "checkpoint 0 warm rerun");
  // Mixed query set: a disjoint (low-similarity) user and a different k
  // interleaved with the strong query — bounds are keyed per (query, k),
  // so neither may inherit the other's remembered k-th best.
  const UserId weak_query = 2;  // not clustered: every neighbour is noise
  ExpectEntriesIdentical(warm.TopK(weak_query, k), cold.TopK(weak_query, k),
                         "checkpoint 0 weak query");
  ExpectEntriesIdentical(warm.TopK(query, 2 * k), cold.TopK(query, 2 * k),
                         "checkpoint 0 larger k");
  ExpectEntriesIdentical(warm.TopK(query, k), cold.TopK(query, k),
                         "checkpoint 0 strong query after weak");

  // Drift the data DOWN: the query's best neighbour loses its shared
  // items, so the remembered k-th best over-prunes and the warm call
  // must detect it and rerun cold.
  ItemId next_item = 1 << 29;
  for (uint32_t c = 0; c < 40; ++c) {
    sketch.Update({query, (query / 4) * 100000u + c, Action::kDelete});
    sketch.Update({query, next_item++, Action::kInsert});
  }
  warm.Refresh();
  cold.Refresh();
  ExpectEntriesIdentical(warm.TopK(query, k), cold.TopK(query, k),
                         "checkpoint 1 (drift below the warm bound)");
}

}  // namespace
}  // namespace vos::core

// Unit tests for common/spsc_ring.h: FIFO order across counter wraparound,
// capacity-1 alternation, the sentinel guarantee (a failed push writes
// nothing and leaves the value intact), monotonic pushed/popped counters,
// and a two-thread full/empty race stress across capacities — the latter is
// what the TSAN CI leg exists for.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"

namespace vos {
namespace {

TEST(SpscRingTest, StartsEmptyAndInitialized) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.initialized());
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.Full());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRingTest, DeferredInit) {
  SpscRing<int> ring;
  EXPECT_FALSE(ring.initialized());
  EXPECT_EQ(ring.capacity(), 0u);
  ring.Init(2);
  EXPECT_TRUE(ring.initialized());
  int v = 7;
  EXPECT_TRUE(ring.TryPush(v));
  int out = 0;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRingTest, CapacityOneAlternation) {
  SpscRing<int> ring(1);
  for (int i = 0; i < 100; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v)) << i;
    EXPECT_TRUE(ring.Full());
    int blocked = -1;
    EXPECT_FALSE(ring.TryPush(blocked)) << i;  // full: must refuse
    int out = -1;
    EXPECT_TRUE(ring.TryPop(&out)) << i;
    EXPECT_EQ(out, i);
    EXPECT_TRUE(ring.Empty());
    EXPECT_FALSE(ring.TryPop(&out)) << i;  // empty: must refuse
  }
  EXPECT_EQ(ring.pushed(), 100u);
  EXPECT_EQ(ring.popped(), 100u);
}

TEST(SpscRingTest, WraparoundPreservesFifoOrder) {
  // Capacity 3 against 1000 values: the slot index wraps hundreds of
  // times while the monotonic counters never do.
  SpscRing<int> ring(3);
  int next_push = 0;
  int next_pop = 0;
  while (next_pop < 1000) {
    int v = next_push;
    while (next_push < 1000 && ring.TryPush(v)) {
      ++next_push;
      v = next_push;
    }
    int out = -1;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_EQ(ring.pushed(), 1000u);
  EXPECT_EQ(ring.popped(), 1000u);
}

TEST(SpscRingTest, FailedPushWritesNothingAndKeepsTheValue) {
  // The sentinel guarantee: a full ring's TryPush must not touch any
  // slot (nothing is ever written past the live slots) and must leave
  // the caller's value intact so it can be retried or dropped with its
  // contents.
  SpscRing<std::string> ring(2);
  std::string a = "first";
  std::string b = "second";
  ASSERT_TRUE(ring.TryPush(a));
  ASSERT_TRUE(ring.TryPush(b));
  std::string overflow = "overflow-payload";
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(overflow, "overflow-payload");  // untouched, not moved-from
  EXPECT_EQ(ring.pushed(), 2u);
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "first");
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "second");  // the failed push corrupted no live slot
}

TEST(SpscRingTest, PopResetsSlotReleasingHeapPayloads) {
  SpscRing<std::shared_ptr<int>> ring(2);
  std::shared_ptr<int> value = std::make_shared<int>(42);
  std::weak_ptr<int> watch = value;
  ASSERT_TRUE(ring.TryPush(value));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.TryPop(&out));
  ASSERT_EQ(*out, 42);
  out.reset();
  // The slot was reset on pop, so nothing inside the ring still owns it.
  EXPECT_TRUE(watch.expired());
}

TEST(SpscRingTest, CountersAreMonotonicAndSizeDerives) {
  SpscRing<int> ring(4);
  uint64_t last_pushed = 0;
  uint64_t last_popped = 0;
  for (int round = 0; round < 50; ++round) {
    int v = round;
    ASSERT_TRUE(ring.TryPush(v));
    EXPECT_GT(ring.pushed(), last_pushed);
    last_pushed = ring.pushed();
    EXPECT_EQ(ring.size(), last_pushed - last_popped);
    if (round % 2 == 1) {
      int out = 0;
      ASSERT_TRUE(ring.TryPop(&out));
      EXPECT_GT(ring.popped(), last_popped);
      last_popped = ring.popped();
    }
    if (ring.Full()) {
      int out = 0;
      while (ring.TryPop(&out)) {
      }
      last_popped = ring.popped();
    }
  }
  EXPECT_EQ(ring.pushed(), last_pushed);
}

// Two threads hammer one ring: every value must arrive exactly once, in
// order, across constant full/empty transitions. Run under TSAN in CI —
// the acquire/release pairing on head_/tail_ is the entire correctness
// argument of the ingest hot path.
void RaceStress(size_t capacity, uint64_t total) {
  SpscRing<uint64_t> ring(capacity);
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    uint64_t expect = 0;
    while (expect < total) {
      uint64_t out = 0;
      if (ring.TryPop(&out)) {
        if (out != expect) {
          failed.store(true);
          return;
        }
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t v = 0; v < total; ++v) {
    uint64_t value = v;
    while (!ring.TryPush(value)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load()) << "capacity " << capacity;
  EXPECT_EQ(ring.pushed(), total);
  EXPECT_EQ(ring.popped(), total);
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingStressTest, FullEmptyRaceCapacityOne) { RaceStress(1, 20000); }
TEST(SpscRingStressTest, FullEmptyRaceCapacityTwo) { RaceStress(2, 20000); }
TEST(SpscRingStressTest, FullEmptyRaceCapacity64) { RaceStress(64, 200000); }

TEST(SpscRingStressTest, VectorPayloadRace) {
  // The payload type the ingest fabric actually ships: moved-in vectors
  // must arrive with their contents intact.
  SpscRing<std::vector<int>> ring(4);
  constexpr int kBatches = 5000;
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    int expect = 0;
    while (expect < kBatches) {
      std::vector<int> out;
      if (ring.TryPop(&out)) {
        if (out.size() != 3 || out[0] != expect || out[2] != expect + 2) {
          failed.store(true);
          return;
        }
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int b = 0; b < kBatches; ++b) {
    std::vector<int> batch = {b, b + 1, b + 2};
    while (!ring.TryPush(batch)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace vos

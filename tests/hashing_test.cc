// Unit tests for src/hashing: mixers, seed derivation, 2-universal hashing,
// tabulation hashing, and Feistel format-preserving permutations.

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "hashing/feistel_permutation.h"
#include "hashing/hash64.h"
#include "hashing/seeds.h"
#include "hashing/tabulation.h"
#include "hashing/two_universal.h"

namespace vos::hash {
namespace {

// ----------------------------------------------------------------- Mixers

TEST(Hash64Test, MixersAreDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_EQ(Mix64V2(12345), Mix64V2(12345));
  EXPECT_EQ(Hash64(1, 2), Hash64(1, 2));
}

TEST(Hash64Test, MixersAreInjectiveOnSample) {
  // Both finalizers are bijections on 64 bits; check no collisions on a
  // dense sample.
  std::unordered_set<uint64_t> seen;
  for (uint64_t x = 0; x < 20000; ++x) seen.insert(Mix64(x));
  EXPECT_EQ(seen.size(), 20000u);
  seen.clear();
  for (uint64_t x = 0; x < 20000; ++x) seen.insert(Mix64V2(x));
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(Hash64Test, SeedsSelectDifferentFunctions) {
  int agreements = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    agreements += (Hash64(x, 1) == Hash64(x, 2));
  }
  EXPECT_EQ(agreements, 0);
}

TEST(Hash64Test, AvalancheOnAdjacentKeys) {
  // Flipping one input bit should flip ~32 of 64 output bits on average.
  double total_flips = 0;
  constexpr int kTrials = 1000;
  for (uint64_t x = 0; x < kTrials; ++x) {
    total_flips += std::popcount(Hash64(x, 7) ^ Hash64(x ^ 1, 7));
  }
  EXPECT_NEAR(total_flips / kTrials, 32.0, 2.0);
}

TEST(Hash64Test, ReduceToRangeBounds) {
  for (uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (uint64_t x = 0; x < 1000; ++x) {
      EXPECT_LT(ReduceToRange(Hash64(x, 3), n), n);
    }
  }
}

TEST(Hash64Test, ReduceToRangeRoughlyUniform) {
  constexpr uint64_t kRange = 8;
  constexpr int kSamples = 80000;
  int counts[kRange] = {0};
  for (int x = 0; x < kSamples; ++x) {
    ++counts[ReduceToRange(Hash64(x, 99), kRange)];
  }
  const double expected = static_cast<double>(kSamples) / kRange;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 24.3);  // chi2(7 dof, 99.9%)
}

TEST(Hash64Test, HashStringDistinguishesStrings) {
  EXPECT_NE(HashString("MinHash"), HashString("OPH"));
  EXPECT_NE(HashString("a", 1), HashString("a", 2));
  EXPECT_EQ(HashString("VOS"), HashString("VOS"));
}

TEST(Hash64Test, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ------------------------------------------------------------------ Seeds

TEST(SeedsTest, DeriveSeedIndependence) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(DeriveSeed(42, i));
  EXPECT_EQ(seen.size(), 10000u);
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_EQ(DeriveSeed2(1, 2, 3), DeriveSeed(DeriveSeed(1, 2), 3));
}

// ------------------------------------------------------------ TwoUniversal

TEST(TwoUniversalTest, StaysInRange) {
  TwoUniversalHash h(5, 100);
  for (uint64_t x = 0; x < 10000; ++x) EXPECT_LT(h(x), 100u);
}

TEST(TwoUniversalTest, DeterministicPerSeed) {
  TwoUniversalHash a(9, 50), b(9, 50), c(10, 50);
  int diff = 0;
  for (uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(a(x), b(x));
    diff += (a(x) != c(x));
  }
  EXPECT_GT(diff, 400);  // different seed ⇒ different function
}

TEST(TwoUniversalTest, PairwiseCollisionRate) {
  // For a 2-universal family, P(h(x)=h(y)) ≤ 1/range for x≠y. Estimate the
  // collision rate over random functions on a fixed pair.
  constexpr uint64_t kRange = 16;
  int collisions = 0;
  constexpr int kFunctions = 20000;
  for (int f = 0; f < kFunctions; ++f) {
    TwoUniversalHash h(1000 + f, kRange);
    collisions += (h(123456) == h(654321));
  }
  EXPECT_NEAR(collisions / static_cast<double>(kFunctions), 1.0 / kRange,
              0.02);
}

TEST(TwoUniversalTest, MarginalRoughlyUniform) {
  TwoUniversalHash h(77, 10);
  int counts[10] = {0};
  for (uint64_t x = 0; x < 50000; ++x) ++counts[h(x)];
  const double expected = 5000.0;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);  // chi2(9 dof, 99.9%)
}

// -------------------------------------------------------------- Tabulation

TEST(TabulationTest, DeterministicPerSeed) {
  TabulationHash a(3), b(3), c(4);
  int diff = 0;
  for (uint64_t x = 0; x < 500; ++x) {
    EXPECT_EQ(a(x), b(x));
    diff += (a(x) != c(x));
  }
  EXPECT_GT(diff, 490);
}

TEST(TabulationTest, NoCollisionsOnSmallSample) {
  TabulationHash h(11);
  std::unordered_set<uint64_t> seen;
  for (uint64_t x = 0; x < 20000; ++x) seen.insert(h(x));
  // 64-bit outputs: expect zero collisions on 20k keys.
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(TabulationTest, OutputBitsBalanced) {
  TabulationHash h(13);
  int ones = 0;
  constexpr int kTrials = 4000;
  for (uint64_t x = 0; x < kTrials; ++x) ones += std::popcount(h(x));
  EXPECT_NEAR(ones / static_cast<double>(kTrials), 32.0, 1.0);
}

// ----------------------------------------------------- FeistelPermutation

/// Property sweep: exact bijectivity on the whole domain for many sizes,
/// including powers of two, odd sizes and size 1.
class FeistelBijectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeistelBijectionTest, IsBijectiveAndInvertible) {
  const uint64_t n = GetParam();
  FeistelPermutation perm(n * 7 + 3, n);
  std::vector<bool> hit(n, false);
  for (uint64_t x = 0; x < n; ++x) {
    const uint64_t y = perm.Apply(x);
    ASSERT_LT(y, n);
    ASSERT_FALSE(hit[y]) << "collision at y=" << y;
    hit[y] = true;
    ASSERT_EQ(perm.Inverse(y), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, FeistelBijectionTest,
                         ::testing::Values(1, 2, 3, 5, 16, 100, 257, 1024,
                                           4096, 10007));

TEST(FeistelPermutationTest, DeterministicPerSeed) {
  FeistelPermutation a(5, 1000), b(5, 1000), c(6, 1000);
  int diff = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(a.Apply(x), b.Apply(x));
    diff += (a.Apply(x) != c.Apply(x));
  }
  EXPECT_GT(diff, 950);
}

TEST(FeistelPermutationTest, LooksRandomNotIdentity) {
  FeistelPermutation perm(99, 10000);
  int fixed_points = 0;
  for (uint64_t x = 0; x < 10000; ++x) fixed_points += (perm.Apply(x) == x);
  // Random permutation has ~1 expected fixed point per domain.
  EXPECT_LT(fixed_points, 20);
}

TEST(FeistelPermutationTest, MinRankIsUniformOverSets) {
  // The argmin item of a fixed set under random permutations should be
  // uniform over the set — the property MinHash relies on.
  constexpr uint64_t kDomain = 64;
  const std::vector<uint64_t> set = {3, 17, 21, 40, 63};
  std::vector<int> wins(kDomain, 0);
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    FeistelPermutation perm(trial, kDomain);
    uint64_t best = set[0];
    for (uint64_t item : set) {
      if (perm.Apply(item) < perm.Apply(best)) best = item;
    }
    ++wins[best];
  }
  for (uint64_t item : set) {
    EXPECT_NEAR(wins[item] / static_cast<double>(kTrials), 1.0 / set.size(),
                0.02)
        << "item " << item;
  }
}

}  // namespace
}  // namespace vos::hash

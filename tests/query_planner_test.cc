// Tests for the shard-aware query tier: QueryPlanner must return exactly
// the pair set of the per-pair ShardedVosSketch::EstimatePair reference —
// bit-identical estimates on same-shard AND cross-shard pairs (the §IV
// correction generalized to (1−2β_A)(1−2β_B)) — for every shard count,
// planner thread count, threshold and prefilter setting; TopK must match
// its brute-force reference under the shared-bound pruning; and the
// incremental Refresh path must land on the same snapshots as a fresh
// Rebuild.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "core/query_planner.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_estimator.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Community stream: every 4-user group's first two members share 75% of
/// their items (so AllPairsAbove has planted hits in and across shards),
/// everyone else is disjoint; ~20% of inserts get a matching delete.
std::vector<Element> CommunityStream(UserId users, size_t items_per_user,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    const bool clustered = u % 4 <= 1;
    const uint64_t base = clustered ? (u / 4) * uint64_t{100000}
                                    : 10000000 + u * uint64_t{100000};
    for (size_t i = 0; i < items_per_user; ++i) {
      const bool shared = clustered && i < items_per_user * 3 / 4;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 50000 + (u % 4) * 10000 + i);
      elements.push_back({u, item, Action::kInsert});
      if (!shared && rng.NextBernoulli(0.2)) {
        elements.push_back({u, item, Action::kDelete});
        elements.push_back({u, item + 7000, Action::kInsert});
      }
    }
  }
  return elements;
}

ShardedVosConfig PlannerConfig(uint32_t shards, uint32_t k = 512,
                               uint64_t m = 1 << 16) {
  ShardedVosConfig config;
  config.base.k = k;
  config.base.m = m;
  config.base.seed = 91;
  config.num_shards = shards;
  return config;
}

void ExpectPairsIdentical(const std::vector<QueryPlanner::Pair>& got,
                          const std::vector<QueryPlanner::Pair>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, want[i].u) << context << " pair " << i;
    EXPECT_EQ(got[i].v, want[i].v) << context << " pair " << i;
    EXPECT_EQ(got[i].common, want[i].common) << context << " pair " << i;
    EXPECT_EQ(got[i].jaccard, want[i].jaccard) << context << " pair " << i;
  }
}

void ExpectEntriesIdentical(const std::vector<QueryPlanner::Entry>& got,
                            const std::vector<QueryPlanner::Entry>& want,
                            const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].user, want[i].user) << context << " entry " << i;
    EXPECT_EQ(got[i].common, want[i].common) << context << " entry " << i;
    EXPECT_EQ(got[i].jaccard, want[i].jaccard) << context << " entry " << i;
  }
}

/// The acceptance matrix: same pair set and bit-identical estimates as
/// the per-pair reference for S ∈ {1, 2, 4} × planner threads ∈ {1, 8} ×
/// τ ∈ {0.2, 0.5}, with and without the prefilter.
TEST(QueryPlannerTest, AllPairsMatchesReferenceAcrossShardsAndThreads) {
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 60, 7);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  for (const uint32_t shards : {1u, 2u, 4u}) {
    ShardedVosSketch sketch(PlannerConfig(shards), users);
    sketch.UpdateBatch(elements.data(), elements.size());

    // Reference once per (shards, τ): it is thread- and prefilter-free.
    for (const double tau : {0.2, 0.5}) {
      std::vector<QueryPlanner::Pair> reference;
      {
        QueryPlanner probe(sketch);
        probe.Rebuild(candidates);
        reference = probe.AllPairsAboveReference(tau);
      }
      EXPECT_FALSE(reference.empty())
          << "shards=" << shards << " tau=" << tau
          << ": stream must plant pairs above the threshold";
      // Cross-shard coverage: with S > 1 some planted pairs must split.
      if (shards > 1) {
        const bool has_cross =
            std::any_of(reference.begin(), reference.end(),
                        [&](const QueryPlanner::Pair& p) {
                          return sketch.ShardOf(p.u) != sketch.ShardOf(p.v);
                        });
        EXPECT_TRUE(has_cross) << "shards=" << shards << " tau=" << tau;
      }
      for (const unsigned threads : {1u, 8u}) {
        for (const bool prefilter : {true, false}) {
          QueryOptions options;
          options.num_threads = threads;
          options.prefilter = prefilter;
          options.block_size = 16;  // several cross-shard blocks per pass
          QueryPlanner planner(sketch, {}, options);
          planner.Rebuild(candidates);
          ExpectPairsIdentical(
              planner.AllPairsAbove(tau), reference,
              "shards=" + std::to_string(shards) +
                  " threads=" + std::to_string(threads) +
                  " tau=" + std::to_string(tau) +
                  " prefilter=" + std::to_string(prefilter));
        }
      }
    }
  }
}

/// With one shard the planner IS the single global index: same pair set
/// and bit-identical estimates as SimilarityIndex over an equivalent
/// standalone VosSketch.
TEST(QueryPlannerTest, SingleShardEqualsGlobalSimilarityIndex) {
  const UserId users = 64;
  const std::vector<Element> elements = CommunityStream(users, 50, 11);
  const ShardedVosConfig config = PlannerConfig(1);

  ShardedVosSketch sharded(config, users);
  VosSketch plain(ShardedVosSketch::ShardConfig(config, 1 - 1), users);
  for (const Element& e : elements) {
    sharded.Update(e);
    plain.Update(e);
  }

  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryPlanner planner(sharded);
  planner.Rebuild(candidates);
  SimilarityIndex index(plain);
  index.Rebuild(candidates);

  const double tau = 0.3;
  const auto from_planner = planner.AllPairsAbove(tau);
  const auto from_index = index.AllPairsAbove(tau);
  ASSERT_EQ(from_planner.size(), from_index.size());
  for (size_t i = 0; i < from_planner.size(); ++i) {
    // The planner canonicalizes u < v by id; the candidate list is
    // id-sorted here, so the index emits the same orientation.
    EXPECT_EQ(from_planner[i].u, from_index[i].u);
    EXPECT_EQ(from_planner[i].v, from_index[i].v);
    EXPECT_EQ(from_planner[i].common, from_index[i].common);
    EXPECT_EQ(from_planner[i].jaccard, from_index[i].jaccard);
  }
}

/// Cross-shard estimates follow the documented model exactly:
/// d = Hamming(Ô_u, Ô_v) over the two shards' reconstructions and the
/// mean of the two shards' log-beta terms — i.e. (1−2β_A)(1−2β_B) where
/// the single-sketch estimator squares one β.
TEST(QueryPlannerTest, CrossShardEstimatesMatchTwoBetaModel) {
  const UserId users = 48;
  const std::vector<Element> elements = CommunityStream(users, 50, 13);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);
  QueryPlanner planner(sketch);
  planner.Rebuild(candidates);

  const auto pairs = planner.AllPairsAbove(0.2);
  const VosEstimator estimator(sketch.config().base.k);
  size_t cross_checked = 0;
  for (const auto& pair : pairs) {
    const uint32_t su = sketch.ShardOf(pair.u);
    const uint32_t sv = sketch.ShardOf(pair.v);
    if (su == sv) continue;
    ++cross_checked;
    const VosSketch& shard_u = sketch.shard(su);
    const VosSketch& shard_v = sketch.shard(sv);
    const BitVector du = shard_u.ExtractUserSketch(sketch.LocalIdOf(pair.u));
    const BitVector dv = shard_v.ExtractUserSketch(sketch.LocalIdOf(pair.v));
    const double alpha = static_cast<double>(du.HammingDistance(dv)) /
                         sketch.config().base.k;
    const PairEstimate expected = estimator.EstimateFromLogTerms(
        shard_u.Cardinality(sketch.LocalIdOf(pair.u)),
        shard_v.Cardinality(sketch.LocalIdOf(pair.v)),
        estimator.LogAlphaTerm(alpha),
        0.5 * (estimator.LogBetaTerm(shard_u.beta()) +
               estimator.LogBetaTerm(shard_v.beta())));
    EXPECT_EQ(pair.common, expected.common)
        << "pair (" << pair.u << "," << pair.v << ")";
    EXPECT_EQ(pair.jaccard, expected.jaccard);
  }
  EXPECT_GT(cross_checked, 0u);
}

TEST(QueryPlannerTest, TopKMatchesReferenceWithSharedBoundPruning) {
  const UserId users = 60;
  const std::vector<Element> elements = CommunityStream(users, 50, 17);
  for (const uint32_t shards : {1u, 3u, 4u}) {
    ShardedVosSketch sketch(PlannerConfig(shards), users);
    sketch.UpdateBatch(elements.data(), elements.size());
    std::vector<UserId> candidates;
    // Leave a few users out of the candidate set so TopK exercises the
    // live-extraction query path too.
    for (UserId u = 0; u < users - 4; ++u) candidates.push_back(u);

    for (const unsigned threads : {1u, 8u}) {
      QueryOptions options;
      options.num_threads = threads;
      QueryPlanner planner(sketch, {}, options);
      planner.Rebuild(candidates);
      for (const UserId query : {UserId{0}, UserId{5}, UserId{users - 2}}) {
        for (const size_t k : {size_t{1}, size_t{5}, size_t{1000}}) {
          ExpectEntriesIdentical(
              planner.TopK(query, k), planner.TopKReference(query, k),
              "shards=" + std::to_string(shards) +
                  " threads=" + std::to_string(threads) +
                  " query=" + std::to_string(query) +
                  " k=" + std::to_string(k));
        }
      }
    }
  }
}

/// Refresh() drains dirty state shard-locally and must land on exactly
/// the snapshots a fresh Rebuild would produce — across churn rounds and
/// including the adaptive fallback round (everything dirty).
TEST(QueryPlannerTest, IncrementalRefreshMatchesFreshRebuild) {
  const UserId users = 56;
  std::vector<Element> elements = CommunityStream(users, 40, 19);
  ShardedVosSketch sketch(PlannerConfig(4, 512, 1 << 14), users);
  sketch.UpdateBatch(elements.data(), elements.size());
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);

  QueryOptions incremental;
  incremental.num_threads = 2;
  incremental.incremental = true;
  QueryPlanner refreshed(sketch, {}, incremental);
  refreshed.Rebuild(candidates);

  ItemId next_item = 1 << 29;
  for (const UserId touched : {UserId{2}, UserId{33}}) {
    sketch.Update({touched, next_item++, Action::kInsert});
    sketch.Update({touched, next_item++, Action::kInsert});
  }
  EXPECT_TRUE(refreshed.Refresh());

  QueryPlanner rebuilt(sketch, {}, QueryOptions{});
  rebuilt.Rebuild(candidates);
  ExpectPairsIdentical(refreshed.AllPairsAbove(0.25),
                       rebuilt.AllPairsAbove(0.25), "small churn");
  ExpectEntriesIdentical(refreshed.TopK(2, 8), rebuilt.TopK(2, 8),
                         "small churn TopK");

  // Touch everyone: per-shard refreshes cross the break-even and fall
  // back to full per-shard rebuilds — results must not change.
  for (UserId u = 0; u < users; ++u) {
    sketch.Update({u, next_item++, Action::kInsert});
  }
  EXPECT_FALSE(refreshed.Refresh());
  rebuilt.Rebuild(candidates);
  ExpectPairsIdentical(refreshed.AllPairsAbove(0.25),
                       rebuilt.AllPairsAbove(0.25), "full churn");
}

TEST(QueryPlannerTest, EmptyAndDegenerateInputs) {
  const UserId users = 16;
  ShardedVosSketch sketch(PlannerConfig(4), users);
  QueryPlanner planner(sketch);
  EXPECT_TRUE(planner.AllPairsAbove(0.5).empty());
  EXPECT_TRUE(planner.TopK(0, 5).empty());

  planner.Rebuild({3});  // one candidate: no pairs, TopK excludes self
  EXPECT_TRUE(planner.AllPairsAbove(0.1).empty());
  EXPECT_TRUE(planner.TopK(3, 5).empty());
  EXPECT_TRUE(planner.TopK(3, 0).empty());
}

}  // namespace
}  // namespace vos::core

// Integration tests: the paper's headline claims reproduced end-to-end on
// generated datasets.
//
//   1. On insertion-only streams every method is reasonably accurate
//      (MinHash/OPH are unbiased there — §III).
//   2. On fully dynamic streams with massive deletions, VOS beats MinHash
//      and OPH on both AAPE and ARMSE (Figure 3's qualitative shape).
//   3. VOS accuracy improves with the memory budget (sanity of the k
//      scaling), and its error stays stable across checkpoints after
//      deletions rather than degrading.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "harness/experiment.h"
#include "stream/dataset.h"

namespace vos::harness {
namespace {

/// Runs the protocol and returns the final checkpoint's metric per method.
std::map<std::string, PairMetrics> FinalMetrics(
    const stream::GraphStream& stream,
    const std::vector<std::string>& methods, uint32_t base_k,
    size_t top_users = 40, uint64_t seed = 17) {
  ExperimentConfig config;
  config.top_users = top_users;
  config.max_pairs = 800;
  config.num_checkpoints = 3;
  config.factory.base_k = base_k;
  config.factory.seed = seed;
  auto result = RunAccuracyExperiment(stream, methods, config);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, PairMetrics> out;
  for (const MethodCheckpoint& mc : result->Final().methods) {
    out[mc.method] = mc.metrics;
  }
  return out;
}

stream::GraphStream ToyStream(stream::DeletionModel model) {
  auto spec = stream::GetDatasetSpec("toy");
  EXPECT_TRUE(spec.ok());
  stream::DatasetSpec adjusted = *spec;
  adjusted.dynamics.model = model;
  return stream::GenerateDataset(adjusted);
}

TEST(IntegrationTest, InsertionOnlyStreamAllMethodsReasonable) {
  const stream::GraphStream s = ToyStream(stream::DeletionModel::kNone);
  const auto metrics =
      FinalMetrics(s, {"MinHash", "OPH", "RP", "VOS"}, /*base_k=*/64);
  for (const auto& [name, m] : metrics) {
    // RP's slot-match probability is s/(n_u·n_v), so its Jaccard estimate
    // is intrinsically high-variance (the paper's Figure 3 shows the same);
    // everyone else should be tight on an insertion-only stream.
    EXPECT_LT(m.armse, name == "RP" ? 0.8 : 0.35)
        << name << " ARMSE on insertion-only stream";
    EXPECT_GT(m.pairs_counted_armse, 0u);
  }
  // MinHash without deletions is the textbook estimator: decently tight.
  EXPECT_LT(metrics.at("MinHash").armse, 0.15);
}

TEST(IntegrationTest, VosWinsUnderMassiveDeletions) {
  // The paper's core claim (Figure 3): with ~50% massive deletions,
  // VOS's AAPE and ARMSE are the lowest of the four methods.
  const stream::GraphStream s = ToyStream(stream::DeletionModel::kMassive);
  ASSERT_GT(s.ComputeStats().num_deletions, 0u);
  const auto metrics =
      FinalMetrics(s, {"MinHash", "OPH", "RP", "VOS"}, /*base_k=*/64);

  const PairMetrics& vos = metrics.at("VOS");
  EXPECT_LT(vos.aape, metrics.at("MinHash").aape);
  EXPECT_LT(vos.aape, metrics.at("OPH").aape);
  EXPECT_LT(vos.aape, metrics.at("RP").aape);
  EXPECT_LT(vos.armse, metrics.at("MinHash").armse);
  EXPECT_LT(vos.armse, metrics.at("OPH").armse);
  EXPECT_LT(vos.armse, metrics.at("RP").armse);
}

TEST(IntegrationTest, VosErrorShrinksWithBudget) {
  const stream::GraphStream s = ToyStream(stream::DeletionModel::kMassive);
  const double armse_small = FinalMetrics(s, {"VOS"}, 16).at("VOS").armse;
  const double armse_large = FinalMetrics(s, {"VOS"}, 128).at("VOS").armse;
  EXPECT_LT(armse_large, armse_small);
}

TEST(IntegrationTest, VosStableAcrossCheckpointsAfterDeletions) {
  // VOS's parity sketch absorbs deletions exactly; its ARMSE at the final
  // checkpoint (after two massive deletions) must not blow up relative to
  // the first checkpoint. Allow 3x slack for the smaller live sets.
  const stream::GraphStream s = ToyStream(stream::DeletionModel::kMassive);
  ExperimentConfig config;
  config.top_users = 40;
  config.max_pairs = 800;
  config.num_checkpoints = 6;
  config.factory.base_k = 64;
  config.factory.seed = 23;
  auto result = RunAccuracyExperiment(s, {"VOS"}, config);
  ASSERT_TRUE(result.ok());
  const double first = result->checkpoints.front().methods[0].metrics.armse;
  const double last = result->checkpoints.back().methods[0].metrics.armse;
  EXPECT_LT(last, std::max(0.08, 3.0 * first));
}

TEST(IntegrationTest, ProbabilisticChurnModelAlsoFavorsVos) {
  // Extension model (steady churn instead of massive deletions): the
  // qualitative ordering must persist.
  const stream::GraphStream s =
      ToyStream(stream::DeletionModel::kProbabilistic);
  ASSERT_GT(s.ComputeStats().num_deletions, 0u);
  const auto metrics = FinalMetrics(s, {"MinHash", "VOS"}, /*base_k=*/64);
  EXPECT_LT(metrics.at("VOS").armse, metrics.at("MinHash").armse);
}

/// Budget sweep (property-style): across base_k values, VOS keeps beating
/// MinHash under deletions.
class BudgetSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BudgetSweepTest, VosBeatsMinHashUnderDeletions) {
  const stream::GraphStream s = ToyStream(stream::DeletionModel::kMassive);
  const auto metrics =
      FinalMetrics(s, {"MinHash", "VOS"}, /*base_k=*/GetParam());
  EXPECT_LE(metrics.at("VOS").armse, metrics.at("MinHash").armse * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweepTest,
                         ::testing::Values(32, 64, 128));

}  // namespace
}  // namespace vos::harness

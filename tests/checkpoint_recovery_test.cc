// Crash-recovery matrix for the sharded ingest fabric (PR 6).
//
// The load-bearing property: Checkpoint() at a Flush barrier + Restore()
// + per-lane replay from ingest_watermarks() reproduces the state of an
// uninterrupted run bit-for-bit — across producers {1,4} × shards {1,4}
// and across every injected fault site (worker kill, update throw, lane
// starvation, torn/corrupt/crashed checkpoint writes). Fault injection is
// deterministic (common/fault_injector.h): specs fire on exact probe-hit
// counts, never on clocks or RNG. The injector is a process-wide
// singleton, so every test disarms in TearDown.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/random.h"
#include "common/status.h"
#include "core/sharded_vos_method.h"
#include "core/sharded_vos_sketch.h"
#include "core/vos_io.h"
#include "core/vos_sketch.h"
#include "stream/graph_stream.h"
#include "stream/replayer.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::StreamReplayer;
using stream::UserId;

constexpr size_t kBatch = 64;

/// A feasible fully dynamic stream: inserts with interleaved deletions of
/// previously inserted edges (per user, delete follows its insert).
std::vector<Element> DynamicStream(UserId users, size_t elements_target,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  elements.reserve(elements_target + elements_target / 4);
  size_t t = 0;
  while (elements.size() < elements_target) {
    const UserId user = static_cast<UserId>(rng.NextBounded(users));
    const ItemId item = static_cast<ItemId>(t++);
    elements.push_back({user, item, Action::kInsert});
    if (rng.NextBernoulli(0.25)) {
      elements.push_back({user, item, Action::kDelete});
    }
  }
  return elements;
}

ShardedVosConfig TestConfig(uint32_t shards, unsigned threads,
                            unsigned producers = 1) {
  ShardedVosConfig config;
  config.base.k = 512;
  config.base.m = 1 << 16;
  config.base.seed = 77;
  config.num_shards = shards;
  config.ingest_threads = threads;
  config.ingest_producers = producers;
  config.batch_size = kBatch;
  config.queue_capacity = 4;
  return config;
}

/// Feeds each lane's elements[start[p], …) in kBatch-sized batches
/// (StreamReplayer::ReplayBatchedFrom — the recovery half of the
/// watermark contract). Lanes are driven sequentially from this thread;
/// the pipeline contract only forbids concurrent calls on ONE lane.
void FeedLanes(ShardedVosSketch* sketch,
               const std::vector<std::vector<Element>>& lanes,
               const std::vector<uint64_t>& start) {
  for (unsigned p = 0; p < lanes.size(); ++p) {
    StreamReplayer::ReplayBatchedFrom(
        lanes[p].data(), lanes[p].size(), start[p], kBatch,
        [&](const Element* first, size_t count) {
          sketch->UpdateBatch(first, count, p);
        });
  }
}

/// Shard arrays and per-user cardinalities of `sketch` equal
/// `reference`'s, bit for bit.
void ExpectBitIdentical(const ShardedVosSketch& sketch,
                        const ShardedVosSketch& reference,
                        const std::string& label) {
  ASSERT_EQ(sketch.num_shards(), reference.num_shards()) << label;
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    EXPECT_TRUE(sketch.shard(s).array() == reference.shard(s).array())
        << label << " shard=" << s << " arrays diverge";
  }
  for (UserId u = 0; u < sketch.num_users(); ++u) {
    ASSERT_EQ(sketch.Cardinality(u), reference.Cardinality(u))
        << label << " user=" << u;
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One section of the v3 container, located by walking the file.
struct SectionSpan {
  uint32_t type = 0;
  uint32_t id = 0;
  size_t payload_pos = 0;    ///< first payload byte
  size_t payload_bytes = 0;  ///< declared payload size
  size_t end_pos = 0;        ///< one past the trailing CRC
};

template <typename T>
T ReadPod(const std::string& bytes, size_t pos) {
  T value{};
  EXPECT_LE(pos + sizeof(T), bytes.size());
  std::memcpy(&value, bytes.data() + pos, sizeof(T));
  return value;
}

/// Walks a well-formed v3 checkpoint into its section spans.
std::vector<SectionSpan> WalkSections(const std::string& bytes) {
  std::vector<SectionSpan> sections;
  EXPECT_GE(bytes.size(), 16u);
  const uint32_t count = ReadPod<uint32_t>(bytes, 12);
  size_t pos = 16;
  for (uint32_t i = 0; i < count; ++i) {
    SectionSpan span;
    span.type = ReadPod<uint32_t>(bytes, pos);
    span.id = ReadPod<uint32_t>(bytes, pos + 4);
    span.payload_bytes = ReadPod<uint64_t>(bytes, pos + 8);
    span.payload_pos = pos + 16;
    span.end_pos = span.payload_pos + span.payload_bytes + 4;
    EXPECT_LE(span.end_pos, bytes.size());
    sections.push_back(span);
    pos = span.end_pos;
  }
  EXPECT_EQ(pos, bytes.size()) << "walker disagrees with the writer";
  return sections;
}

/// Every test disarms the process-wide injector on the way out so a
/// failing assertion cannot leak an armed fault into the next test.
class CheckpointRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  std::string TempPath(const std::string& name) const {
    return ::testing::TempDir() + "/ckpt_recovery_" + name;
  }
};

// ------------------------------------------------- round-trip matrix

/// producers {1,4} × shards {1,4}: checkpoint at the half-way Flush
/// barrier, restore into a fresh process-equivalent instance, replay
/// every lane from its watermark — bit-identical to the uninterrupted
/// run.
TEST_F(CheckpointRecoveryTest, RestorePlusReplayMatchesUninterruptedRun) {
  const std::vector<Element> elements = DynamicStream(300, 4000, 7);
  for (const uint32_t shards : {1u, 4u}) {
    for (const unsigned producers : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      const ShardedVosConfig config = TestConfig(shards, 2, producers);
      const std::vector<std::vector<Element>> lanes =
          StreamReplayer::SplitByUserLane(elements.data(), elements.size(),
                                          producers);

      // The uninterrupted run: every lane end to end.
      ShardedVosSketch uninterrupted(config, 300);
      FeedLanes(&uninterrupted, lanes,
                std::vector<uint64_t>(producers, 0));
      ASSERT_TRUE(uninterrupted.Flush().ok());

      // The interrupted run: half of every lane, then a checkpoint.
      const std::string path =
          TempPath("matrix_" + std::to_string(shards) + "_" +
                   std::to_string(producers));
      std::vector<uint64_t> cut(producers);
      {
        ShardedVosSketch first(config, 300);
        for (unsigned p = 0; p < producers; ++p) {
          const size_t half = lanes[p].size() / 2;
          StreamReplayer::ReplayBatchedFrom(
              lanes[p].data(), half, 0, kBatch,
              [&](const Element* e, size_t n) {
                first.UpdateBatch(e, n, p);
              });
          cut[p] = half;
        }
        ASSERT_TRUE(first.Checkpoint(path).ok());
        EXPECT_EQ(first.ingest_watermarks(), cut);
      }  // the first instance dies with the checkpoint on disk

      // Recovery in a fresh instance: restore, then replay each lane
      // from its checkpointed watermark.
      ShardedVosSketch recovered(config, 300);
      ASSERT_TRUE(recovered.Restore(path).ok());
      ASSERT_EQ(recovered.ingest_watermarks(), cut)
          << "watermarks must come back from the checkpoint";
      FeedLanes(&recovered, lanes, recovered.ingest_watermarks());
      ASSERT_TRUE(recovered.Flush().ok());
      ExpectBitIdentical(recovered, uninterrupted, "restore+replay");
      EXPECT_EQ(recovered.dropped_elements(), 0u);
    }
  }
}

// -------------------------------------------- fault site: update throw

/// A worker exception poisons exactly its shard: FlushIngest surfaces a
/// sticky non-OK Status, queries keep answering, Checkpoint refuses, and
/// an in-place Restore of the pre-fault checkpoint heals the pipeline so
/// replay completes the recovery bit-for-bit.
TEST_F(CheckpointRecoveryTest, UpdateThrowPoisonsShardAndRestoreHeals) {
  const std::vector<Element> elements = DynamicStream(300, 4000, 11);
  for (const uint32_t shards : {1u, 4u}) {
    for (const unsigned producers : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      const ShardedVosConfig config = TestConfig(shards, 2, producers);
      const std::vector<std::vector<Element>> lanes =
          StreamReplayer::SplitByUserLane(elements.data(), elements.size(),
                                          producers);

      ShardedVosSketch uninterrupted(config, 300);
      FeedLanes(&uninterrupted, lanes,
                std::vector<uint64_t>(producers, 0));
      ASSERT_TRUE(uninterrupted.Flush().ok());

      const std::string path =
          TempPath("throw_" + std::to_string(shards) + "_" +
                   std::to_string(producers));
      ShardedVosSketch victim(config, 300);
      std::vector<uint64_t> cut(producers);
      for (unsigned p = 0; p < producers; ++p) {
        const size_t half = lanes[p].size() / 2;
        StreamReplayer::ReplayBatchedFrom(
            lanes[p].data(), half, 0, kBatch,
            [&](const Element* e, size_t n) { victim.UpdateBatch(e, n, p); });
        cut[p] = half;
      }
      ASSERT_TRUE(victim.Checkpoint(path).ok());

      // Arm: the very next applied element throws (any shard, any lane).
      FaultSpec spec;
      spec.site = FaultSite::kUpdateThrow;
      FaultInjector::Global().Arm(spec);

      FeedLanes(&victim, lanes, cut);
      const Status degraded = victim.Flush();
      ASSERT_FALSE(degraded.ok());
      EXPECT_EQ(degraded.code(), StatusCode::kInternal) << degraded;
      EXPECT_NE(degraded.message().find("update failed"), std::string::npos)
          << degraded;
      EXPECT_GT(victim.dropped_elements(), 0u);
      // Queries keep serving the degraded state.
      (void)victim.EstimatePair(0, 1);
      // A checkpoint must never cover dropped data.
      const Status refused = victim.Checkpoint(TempPath("throw_refused"));
      ASSERT_FALSE(refused.ok());
      EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;

      // Recovery, in place: Restore heals the poisoning (no worker
      // thread died), watermarks rewind to the checkpoint, replay lands
      // on the uninterrupted state.
      FaultInjector::Global().DisarmAll();
      ASSERT_TRUE(victim.Restore(path).ok());
      ASSERT_TRUE(victim.IngestStatus().ok()) << victim.IngestStatus();
      EXPECT_EQ(victim.dropped_elements(), 0u);
      ASSERT_EQ(victim.ingest_watermarks(), cut);
      FeedLanes(&victim, lanes, victim.ingest_watermarks());
      ASSERT_TRUE(victim.Flush().ok());
      ExpectBitIdentical(victim, uninterrupted, "healed restore+replay");
    }
  }
}

// --------------------------------------------- fault site: worker kill

/// A killed worker thread poisons every shard it owns and stays dead: an
/// in-place Restore keeps those shards rejected (FailedPrecondition), a
/// fresh instance restores and replays to the uninterrupted state.
TEST_F(CheckpointRecoveryTest, WorkerKillNeedsFreshInstanceToRecover) {
  const std::vector<Element> elements = DynamicStream(300, 4000, 13);
  for (const uint32_t shards : {1u, 4u}) {
    for (const unsigned producers : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      const ShardedVosConfig config = TestConfig(shards, 2, producers);
      const std::vector<std::vector<Element>> lanes =
          StreamReplayer::SplitByUserLane(elements.data(), elements.size(),
                                          producers);

      ShardedVosSketch uninterrupted(config, 300);
      FeedLanes(&uninterrupted, lanes,
                std::vector<uint64_t>(producers, 0));
      ASSERT_TRUE(uninterrupted.Flush().ok());

      const std::string path =
          TempPath("kill_" + std::to_string(shards) + "_" +
                   std::to_string(producers));
      std::vector<uint64_t> cut(producers);
      {
        ShardedVosSketch victim(config, 300);
        for (unsigned p = 0; p < producers; ++p) {
          const size_t half = lanes[p].size() / 2;
          StreamReplayer::ReplayBatchedFrom(
              lanes[p].data(), half, 0, kBatch,
              [&](const Element* e, size_t n) {
                victim.UpdateBatch(e, n, p);
              });
          cut[p] = half;
        }
        ASSERT_TRUE(victim.Checkpoint(path).ok());

        // Kill the worker applying the very next batch.
        FaultSpec spec;
        spec.site = FaultSite::kWorkerKill;
        FaultInjector::Global().Arm(spec);

        FeedLanes(&victim, lanes, cut);
        const Status degraded = victim.Flush();
        ASSERT_FALSE(degraded.ok());
        EXPECT_EQ(degraded.code(), StatusCode::kInternal) << degraded;
        EXPECT_NE(degraded.message().find("worker"), std::string::npos)
            << degraded;
        EXPECT_GT(victim.dropped_elements(), 0u);
        EXPECT_GT(FaultInjector::Global().fires(FaultSite::kWorkerKill), 0u);

        // In place, the dead worker's shards stay rejected even after a
        // successful Restore — a dead thread cannot be resurrected.
        FaultInjector::Global().DisarmAll();
        ASSERT_TRUE(victim.Restore(path).ok());
        const Status still = victim.IngestStatus();
        ASSERT_FALSE(still.ok());
        EXPECT_EQ(still.code(), StatusCode::kFailedPrecondition) << still;
        EXPECT_NE(still.message().find("fresh instance"), std::string::npos)
            << still;
      }

      // The documented recovery path: a fresh instance.
      ShardedVosSketch recovered(config, 300);
      ASSERT_TRUE(recovered.Restore(path).ok());
      ASSERT_TRUE(recovered.IngestStatus().ok());
      ASSERT_EQ(recovered.ingest_watermarks(), cut);
      FeedLanes(&recovered, lanes, recovered.ingest_watermarks());
      ASSERT_TRUE(recovered.Flush().ok());
      ExpectBitIdentical(recovered, uninterrupted, "fresh-instance recovery");
    }
  }
}

// ------------------------------------------ fault site: lane starvation

/// A stalled worker plus a bounded queue drives the enqueue deadline:
/// the starved lane's shard is poisoned with DeadlineExceeded instead of
/// the producer hanging forever, and a checkpoint of the degraded
/// pipeline is refused.
TEST_F(CheckpointRecoveryTest, LaneStarvationSurfacesEnqueueDeadline) {
  ShardedVosConfig config = TestConfig(1, 1);
  config.queue_capacity = 1;
  config.enqueue_timeout_ms = 40;
  ShardedVosSketch sketch(config, 300);

  FaultSpec stall;
  stall.site = FaultSite::kLaneStall;
  stall.delay_ms = 250;  // every batch: worker sleeps >> enqueue deadline
  FaultInjector::Global().Arm(stall);

  const std::vector<Element> elements = DynamicStream(300, 1500, 17);
  StreamReplayer::ReplayBatchedFrom(
      elements.data(), elements.size(), 0, kBatch,
      [&](const Element* e, size_t n) { sketch.UpdateBatch(e, n); });
  FaultInjector::Global().DisarmAll();

  const Status degraded = sketch.Flush();
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.code(), StatusCode::kDeadlineExceeded) << degraded;
  EXPECT_NE(degraded.message().find("lane starved"), std::string::npos)
      << degraded;
  EXPECT_GT(sketch.dropped_elements(), 0u);
  // Queries keep serving; checkpoints refuse.
  (void)sketch.EstimatePair(0, 1);
  const Status refused = sketch.Checkpoint(TempPath("starved_refused"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;
}

/// Flush's own deadline: an expired wait reports DeadlineExceeded but
/// poisons nothing — once the stall is gone the same pipeline drains and
/// lands on the reference state.
TEST_F(CheckpointRecoveryTest, FlushDeadlineExpiresWithoutPoisoning) {
  ShardedVosConfig config = TestConfig(1, 1);
  config.queue_capacity = 64;
  config.flush_timeout_ms = 50;
  ShardedVosSketch sketch(config, 300);
  ShardedVosSketch reference(TestConfig(1, 0), 300);

  const std::vector<Element> elements = DynamicStream(300, 500, 19);
  reference.UpdateBatch(elements.data(), elements.size());

  FaultSpec stall;
  stall.site = FaultSite::kLaneStall;
  stall.delay_ms = 400;
  FaultInjector::Global().Arm(stall);

  StreamReplayer::ReplayBatchedFrom(
      elements.data(), elements.size(), 0, kBatch,
      [&](const Element* e, size_t n) { sketch.UpdateBatch(e, n); });
  const Status timed_out = sketch.Flush();
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), StatusCode::kDeadlineExceeded) << timed_out;
  EXPECT_EQ(sketch.dropped_elements(), 0u) << "deadline must not drop data";

  // Remove the stall; the pipeline drains on its own and the abandoned
  // wait turns out to have been exactly that — a wait, not a loss.
  FaultInjector::Global().DisarmAll();
  Status drained = sketch.Flush();
  for (int retry = 0; retry < 200 && !drained.ok(); ++retry) {
    ASSERT_EQ(drained.code(), StatusCode::kDeadlineExceeded) << drained;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    drained = sketch.Flush();
  }
  ASSERT_TRUE(drained.ok()) << drained;
  ExpectBitIdentical(sketch, reference, "post-stall drain");
}

// ------------------------------------------- fault site: memory budget

/// Crossing memory_budget_bits degrades gracefully: the offending batch
/// is dropped, the sticky status is ResourceExhausted, nothing OOMs, and
/// Restore heals.
TEST_F(CheckpointRecoveryTest, MemoryBudgetCrossingRejectsBatches) {
  const std::vector<Element> elements = DynamicStream(300, 2000, 23);

  ShardedVosConfig config = TestConfig(1, 1);
  config.queue_capacity = 64;
  {
    // Budget: the static footprint plus room for ~1.5 queued batches.
    ShardedVosSketch probe(config, 300);
    config.memory_budget_bits =
        probe.MemoryBits() + (kBatch * sizeof(Element) * 8 * 3) / 2;
  }
  ShardedVosSketch sketch(config, 300);
  const std::string path = TempPath("budget");
  ASSERT_TRUE(sketch.Checkpoint(path).ok());  // empty but valid

  // Hold the worker so queued bytes accumulate deterministically.
  FaultSpec stall;
  stall.site = FaultSite::kLaneStall;
  stall.delay_ms = 500;
  FaultInjector::Global().Arm(stall);

  sketch.UpdateBatch(elements.data(), kBatch);      // fills the budget
  sketch.UpdateBatch(elements.data() + kBatch, kBatch);  // crosses it
  FaultInjector::Global().DisarmAll();

  const Status degraded = sketch.Flush();
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.code(), StatusCode::kResourceExhausted) << degraded;
  EXPECT_GE(sketch.dropped_elements(), kBatch);

  ASSERT_TRUE(sketch.Restore(path).ok());
  ASSERT_TRUE(sketch.IngestStatus().ok());
}

/// A budget smaller than the config's own static footprint is a
/// construction-time error, not a pipeline that rejects every batch.
TEST_F(CheckpointRecoveryTest, ValidateConfigRejectsDegenerateConfigs) {
  const ShardedVosConfig good = TestConfig(4, 2, 2);
  EXPECT_TRUE(ShardedVosSketch::ValidateConfig(good, 300).ok());

  ShardedVosConfig bad = good;
  bad.queue_capacity = 0;
  Status status = ShardedVosSketch::ValidateConfig(bad, 300);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("queue_capacity"), std::string::npos)
      << status;

  bad = good;
  bad.batch_size = 0;
  status = ShardedVosSketch::ValidateConfig(bad, 300);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("batch_size"), std::string::npos) << status;

  bad = good;
  bad.ingest_producers = 0;
  status = ShardedVosSketch::ValidateConfig(bad, 300);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("producer"), std::string::npos) << status;

  bad = good;
  bad.num_shards = 0;
  EXPECT_FALSE(ShardedVosSketch::ValidateConfig(bad, 300).ok());

  bad = good;
  bad.base.k = 0;
  EXPECT_FALSE(ShardedVosSketch::ValidateConfig(bad, 300).ok());

  bad = good;
  bad.base.m = 0;
  EXPECT_FALSE(ShardedVosSketch::ValidateConfig(bad, 300).ok());

  bad = good;
  bad.memory_budget_bits = 1;  // far below the static footprint
  status = ShardedVosSketch::ValidateConfig(bad, 300);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("budget"), std::string::npos) << status;
}

// ------------------------------------- torn / corrupt checkpoint files

/// Builds a quiesced 4-shard, 2-lane sketch with a checkpoint at `path`,
/// returning the half-way cut so callers can replay.
struct CheckpointedState {
  std::vector<std::vector<Element>> lanes;
  std::vector<uint64_t> cut;
};

CheckpointedState MakeCheckpoint(const ShardedVosConfig& config,
                                 ShardedVosSketch* sketch,
                                 const std::string& path, uint64_t seed) {
  CheckpointedState state;
  const std::vector<Element> elements = DynamicStream(300, 4000, seed);
  state.lanes = StreamReplayer::SplitByUserLane(
      elements.data(), elements.size(), config.ingest_producers);
  state.cut.resize(config.ingest_producers);
  for (unsigned p = 0; p < config.ingest_producers; ++p) {
    const size_t half = state.lanes[p].size() / 2;
    StreamReplayer::ReplayBatchedFrom(
        state.lanes[p].data(), half, 0, kBatch,
        [&](const Element* e, size_t n) { sketch->UpdateBatch(e, n, p); });
    state.cut[p] = half;
  }
  EXPECT_TRUE(sketch->Checkpoint(path).ok());
  return state;
}

/// Satellite (c): flip one byte in every section, truncate at every
/// section boundary and mid-section — Restore must reject each damaged
/// file with an error naming the section, and must leave the live sketch
/// exactly as it was (never half-applied).
TEST_F(CheckpointRecoveryTest, CorruptAndTornCheckpointsRejectPerSection) {
  const ShardedVosConfig config = TestConfig(4, 2, 2);
  ShardedVosSketch sketch(config, 300);
  const std::string path = TempPath("sections");
  const CheckpointedState state = MakeCheckpoint(config, &sketch, path, 29);
  ASSERT_TRUE(sketch.Flush().ok());

  // A twin at the same cut: the untouched-state reference.
  ShardedVosSketch twin(config, 300);
  for (unsigned p = 0; p < config.ingest_producers; ++p) {
    StreamReplayer::ReplayBatchedFrom(
        state.lanes[p].data(), state.cut[p], 0, kBatch,
        [&](const Element* e, size_t n) { twin.UpdateBatch(e, n, p); });
  }
  ASSERT_TRUE(twin.Flush().ok());

  const std::string pristine = ReadFileBytes(path);
  const std::vector<SectionSpan> sections = WalkSections(pristine);
  ASSERT_GE(sections.size(), 7u)  // manifest + dense_map + watermarks + 4
      << "expected every section type in a 4-shard checkpoint";
  const std::string damaged = TempPath("sections_damaged");

  // One flipped byte per section payload → CRC mismatch naming it.
  for (const SectionSpan& section : sections) {
    SCOPED_TRACE(std::string("flip in section ") +
                 ShardedCheckpointIo::SectionName(section.type) + "[" +
                 std::to_string(section.id) + "]");
    ASSERT_GT(section.payload_bytes, 0u);
    std::string bytes = pristine;
    bytes[section.payload_pos + section.payload_bytes / 2] ^= 0x01;
    WriteFileBytes(damaged, bytes);
    const Status rejected = sketch.Restore(damaged);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.code(), StatusCode::kCorruption) << rejected;
    EXPECT_NE(rejected.message().find(
                  ShardedCheckpointIo::SectionName(section.type)),
              std::string::npos)
        << rejected;
    ExpectBitIdentical(sketch, twin, "after rejected flip");
    ASSERT_TRUE(sketch.IngestStatus().ok());
  }

  // Truncation at every section boundary and mid-payload → rejected,
  // live state untouched.
  std::vector<size_t> cuts = {0, 8, 15};
  for (const SectionSpan& section : sections) {
    cuts.push_back(section.payload_pos + section.payload_bytes / 2);
    cuts.push_back(section.end_pos - 2);  // inside the trailing CRC
    if (section.end_pos < pristine.size()) cuts.push_back(section.end_pos);
  }
  for (const size_t cut : cuts) {
    SCOPED_TRACE("truncate at byte " + std::to_string(cut));
    WriteFileBytes(damaged, pristine.substr(0, cut));
    const Status rejected = sketch.Restore(damaged);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.code(), StatusCode::kCorruption) << rejected;
    ExpectBitIdentical(sketch, twin, "after rejected truncation");
    ASSERT_TRUE(sketch.IngestStatus().ok());
  }

  // Trailing garbage is as fatal as missing bytes.
  WriteFileBytes(damaged, pristine + std::string(1, '\0'));
  const Status oversized = sketch.Restore(damaged);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.code(), StatusCode::kCorruption) << oversized;
  ExpectBitIdentical(sketch, twin, "after rejected oversized file");

  // The pristine file still restores (the victim was never poisoned by
  // any of the rejections above).
  ASSERT_TRUE(sketch.Restore(path).ok());
  ExpectBitIdentical(sketch, twin, "pristine restore");
}

/// The injected tear/corrupt sites produce silently damaged files (Save
/// reports success — exactly what a torn write looks like) that Restore
/// then refuses; the injected crash site fails the Save and leaves the
/// previous checkpoint byte-identical on disk.
TEST_F(CheckpointRecoveryTest, InjectedCheckpointFaultsAreCaughtOnRestore) {
  const ShardedVosConfig config = TestConfig(4, 2, 2);
  ShardedVosSketch sketch(config, 300);
  const std::string path = TempPath("inject");
  const CheckpointedState state = MakeCheckpoint(config, &sketch, path, 31);
  const std::string pristine = ReadFileBytes(path);

  // Tear: only the first 200 bytes land, Save still reports success.
  FaultSpec tear;
  tear.site = FaultSite::kCheckpointTear;
  tear.byte_offset = 200;
  FaultInjector::Global().Arm(tear);
  const std::string torn_path = TempPath("inject_torn");
  ASSERT_TRUE(sketch.Checkpoint(torn_path).ok())
      << "a torn write is silent by definition";
  EXPECT_EQ(ReadFileBytes(torn_path).size(), 200u);
  Status rejected = sketch.Restore(torn_path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kCorruption) << rejected;

  // Corrupt: one flipped byte, Save reports success, Restore refuses.
  FaultInjector::Global().DisarmAll();
  FaultSpec corrupt;
  corrupt.site = FaultSite::kCheckpointCorrupt;
  corrupt.byte_offset = pristine.size() / 2;
  FaultInjector::Global().Arm(corrupt);
  const std::string corrupt_path = TempPath("inject_corrupt");
  ASSERT_TRUE(sketch.Checkpoint(corrupt_path).ok());
  rejected = sketch.Restore(corrupt_path);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kCorruption) << rejected;

  // Crash before rename: Save fails loudly and the PREVIOUS checkpoint
  // at `path` is untouched, byte for byte.
  FaultInjector::Global().DisarmAll();
  FaultSpec crash;
  crash.site = FaultSite::kCheckpointCrash;
  FaultInjector::Global().Arm(crash);
  // Advance the state so the attempted checkpoint would differ.
  FeedLanes(&sketch, state.lanes, state.cut);
  const Status failed = sketch.Checkpoint(path);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError) << failed;
  EXPECT_EQ(ReadFileBytes(path), pristine)
      << "a crashed commit must leave the old checkpoint intact";
  // And the old checkpoint still restores into a fresh instance.
  FaultInjector::Global().DisarmAll();
  ShardedVosSketch recovered(config, 300);
  ASSERT_TRUE(recovered.Restore(path).ok());
  EXPECT_EQ(recovered.ingest_watermarks(), state.cut);
}

/// A checkpoint is bound to its configuration: restoring under a
/// different geometry is refused by the manifest check, naming the field.
TEST_F(CheckpointRecoveryTest, ManifestMismatchIsRefused) {
  const ShardedVosConfig config = TestConfig(4, 2, 2);
  ShardedVosSketch sketch(config, 300);
  const std::string path = TempPath("manifest");
  MakeCheckpoint(config, &sketch, path, 37);

  ShardedVosConfig other = config;
  other.num_shards = 2;
  ShardedVosSketch wrong_shards(other, 300);
  Status refused = wrong_shards.Restore(path);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;

  other = config;
  other.base.seed = 78;
  ShardedVosSketch wrong_seed(other, 300);
  refused = wrong_seed.Restore(path);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;

  ShardedVosSketch wrong_users(config, 301);
  refused = wrong_users.Restore(path);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition) << refused;
}

// ----------------------------------- satellite (a): v1/v2 file bounds

/// Every truncation of a v2 single-sketch file fails with Corruption —
/// no allocation from a size field that the bytes on disk cannot back.
TEST_F(CheckpointRecoveryTest, SingleSketchLoadRejectsTruncatedFiles) {
  VosConfig config;
  config.k = 512;
  config.m = 1 << 14;
  config.seed = 77;
  VosSketch sketch(config, 64);
  const std::vector<Element> elements = DynamicStream(64, 500, 41);
  for (const Element& e : elements) sketch.Update(e);

  const std::string path = TempPath("single_v2");
  ASSERT_TRUE(VosSketchIo::Save(sketch, path).ok());
  const std::string pristine = ReadFileBytes(path);
  const std::string damaged = TempPath("single_v2_damaged");

  // Truncate at a spread of prefixes: inside the header, inside the
  // array payload, inside the cardinalities, inside the checksum.
  for (const size_t cut :
       {size_t{0}, size_t{4}, size_t{11}, size_t{20}, size_t{40},
        pristine.size() / 2, pristine.size() - 12, pristine.size() - 1}) {
    SCOPED_TRACE("truncate at byte " + std::to_string(cut));
    WriteFileBytes(damaged, pristine.substr(0, cut));
    const auto loaded = VosSketchIo::Load(damaged);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << loaded.status();
  }

  // Oversized: trailing bytes are rejected, not silently ignored.
  WriteFileBytes(damaged, pristine + std::string(3, '\7'));
  const auto oversized = VosSketchIo::Load(damaged);
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kCorruption)
      << oversized.status();

  // A flipped payload byte trips the checksum.
  std::string flipped = pristine;
  flipped[flipped.size() / 2] ^= 0x10;
  WriteFileBytes(damaged, flipped);
  const auto corrupted = VosSketchIo::Load(damaged);
  ASSERT_FALSE(corrupted.ok());
  EXPECT_EQ(corrupted.status().code(), StatusCode::kCorruption)
      << corrupted.status();

  // The pristine file round-trips.
  const auto loaded = VosSketchIo::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->array() == sketch.array());
}

// ------------------------------- stress: checkpoint under ingest load

/// Checkpoint-under-load: waves of concurrent producers saturate
/// capacity-1 rings (every push back-pressures) while a poller hammers
/// the lock-free HasPendingIngest; between waves the pipeline is
/// checkpointed at the Flush barrier. Each wave's checkpoint must
/// restore into a fresh instance and, replayed from its watermarks by
/// concurrent producers, land bit-identical on the uninterrupted state.
/// CI's sanitizer legs raise VOS_STRESS_PRODUCERS to oversubscribe the
/// park/unpark handshakes.
TEST_F(CheckpointRecoveryTest, CheckpointUnderLoadStress) {
  unsigned producers = 4;
  if (const char* env = std::getenv("VOS_STRESS_PRODUCERS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 64) producers = static_cast<unsigned>(parsed);
  }
  ShardedVosConfig config = TestConfig(4, 2, producers);
  config.queue_capacity = 1;  // every sub-batch rides the back-pressure path
  config.batch_size = 16;
  const std::vector<Element> elements = DynamicStream(300, 6000, 47);
  const std::vector<std::vector<Element>> lanes =
      StreamReplayer::SplitByUserLane(elements.data(), elements.size(),
                                      producers);

  ShardedVosSketch uninterrupted(config, 300);
  FeedLanes(&uninterrupted, lanes, std::vector<uint64_t>(producers, 0));
  ASSERT_TRUE(uninterrupted.Flush().ok());

  ShardedVosSketch sketch(config, 300);
  std::atomic<bool> stop_polling{false};
  std::thread monitor([&] {
    while (!stop_polling.load()) (void)sketch.HasPendingIngest();
  });

  constexpr unsigned kWaves = 3;
  std::vector<std::vector<uint64_t>> wave_cut(kWaves);
  std::vector<std::string> wave_path(kWaves);
  std::vector<uint64_t> fed(producers, 0);
  for (unsigned wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        // This wave's share of the lane, in small batches so each lane
        // crosses its ring many times per wave.
        const uint64_t until = wave + 1 == kWaves
                                   ? lanes[p].size()
                                   : (wave + 1) * lanes[p].size() / kWaves;
        StreamReplayer::ReplayBatchedFrom(
            lanes[p].data(), until, fed[p], /*batch=*/16,
            [&](const Element* e, size_t n) { sketch.UpdateBatch(e, n, p); });
        (void)sketch.FlushProducer(p);
        fed[p] = until;
      });
    }
    for (std::thread& t : threads) t.join();
    wave_path[wave] = TempPath("underload_w" + std::to_string(wave));
    ASSERT_TRUE(sketch.Checkpoint(wave_path[wave]).ok()) << "wave " << wave;
    wave_cut[wave] = sketch.ingest_watermarks();
    for (unsigned p = 0; p < producers; ++p) {
      EXPECT_EQ(wave_cut[wave][p], fed[p]) << "wave " << wave;
    }
  }
  stop_polling.store(true);
  monitor.join();
  ASSERT_TRUE(sketch.Flush().ok());
  ASSERT_EQ(sketch.dropped_elements(), 0u);
  ExpectBitIdentical(sketch, uninterrupted, "final wave state");

  // Every wave's checkpoint is a valid recovery point: restore fresh,
  // replay each lane's tail concurrently, land on the uninterrupted
  // state bit-for-bit.
  for (unsigned wave = 0; wave < kWaves; ++wave) {
    SCOPED_TRACE("recover from wave " + std::to_string(wave));
    ShardedVosSketch recovered(config, 300);
    ASSERT_TRUE(recovered.Restore(wave_path[wave]).ok());
    ASSERT_EQ(recovered.ingest_watermarks(), wave_cut[wave]);
    std::vector<std::thread> threads;
    for (unsigned p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        StreamReplayer::ReplayBatchedFrom(
            lanes[p].data(), lanes[p].size(), wave_cut[wave][p], kBatch,
            [&](const Element* e, size_t n) {
              recovered.UpdateBatch(e, n, p);
            });
        (void)recovered.FlushProducer(p);
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_TRUE(recovered.Flush().ok());
    ExpectBitIdentical(recovered, uninterrupted, "recovered from wave");
  }
}

// ------------------------- method layer: degraded pipeline keeps serving

/// The harness-facing contract: FlushIngest surfaces the poisoned
/// pipeline, PrepareQuery declines to rebuild on degraded state, and
/// EstimatePair keeps answering from the last good snapshot bit-for-bit.
TEST_F(CheckpointRecoveryTest, MethodServesLastSnapshotWhileDegraded) {
  ShardedVosConfig config = TestConfig(1, 1);
  ShardedVosMethod method(config, 300);
  const std::vector<Element> elements = DynamicStream(300, 3000, 43);

  method.UpdateBatch(elements.data(), elements.size() / 2);
  ASSERT_TRUE(method.FlushIngest().ok());
  std::vector<UserId> tracked;
  for (UserId u = 0; u < 16; ++u) tracked.push_back(u);
  method.PrepareQuery(tracked);
  const PairEstimate before = method.EstimatePair(2, 3);

  // Poison on the next applied element: with one shard the whole write
  // path degrades, so the sketch state cannot move past the snapshot.
  FaultSpec spec;
  spec.site = FaultSite::kUpdateThrow;
  FaultInjector::Global().Arm(spec);
  method.UpdateBatch(elements.data() + elements.size() / 2,
                     elements.size() - elements.size() / 2);
  const Status degraded = method.FlushIngest();
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.code(), StatusCode::kInternal) << degraded;

  // PrepareQuery on a degraded pipeline keeps the old snapshot.
  method.PrepareQuery(tracked);
  const PairEstimate after = method.EstimatePair(2, 3);
  EXPECT_EQ(before.common, after.common);
  EXPECT_EQ(before.jaccard, after.jaccard);
}

}  // namespace
}  // namespace vos::core

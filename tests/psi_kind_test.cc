// Property sweep over the ψ hash families of VosSketch (PsiKind): all
// three must be deterministic, serialization-compatible, and statistically
// equivalent for estimation accuracy — plus tests for the containment and
// overlap estimators.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "core/vos_estimator.h"
#include "core/vos_io.h"
#include "core/vos_sketch.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

class PsiKindTest : public ::testing::TestWithParam<PsiKind> {
 protected:
  VosConfig Config(uint32_t k = 4096, uint64_t m = 1 << 18) const {
    VosConfig config;
    config.k = k;
    config.m = m;
    config.seed = 91;
    config.psi_kind = GetParam();
    return config;
  }
};

TEST_P(PsiKindTest, BucketsStayInRangeAndAreDeterministic) {
  VosSketch a(Config(257, 1 << 12), 4);  // odd k exercises range mapping
  VosSketch b(Config(257, 1 << 12), 4);
  for (ItemId i = 0; i < 5000; ++i) {
    ASSERT_LT(a.BucketOf(i), 257u);
    ASSERT_EQ(a.BucketOf(i), b.BucketOf(i));
  }
}

TEST_P(PsiKindTest, BucketsAreRoughlyUniform) {
  VosSketch sketch(Config(16, 1 << 12), 1);
  int counts[16] = {0};
  constexpr int kSamples = 64000;
  for (ItemId i = 0; i < kSamples; ++i) ++counts[sketch.BucketOf(i)];
  const double expected = kSamples / 16.0;
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 37.7);  // chi2(15 dof, 99.9%)
}

TEST_P(PsiKindTest, EstimationAccuracyHolds) {
  VosSketch sketch(Config(), 3);
  // Users 0/1 share 300 of 400 items; user 2 contaminates the array.
  for (ItemId i = 0; i < 400; ++i) {
    sketch.Update({0, i, Action::kInsert});
    sketch.Update({1, i < 300 ? i : i + 100000, Action::kInsert});
    sketch.Update({2, i + 200000, Action::kInsert});
  }
  const BitVector du = sketch.ExtractUserSketch(0);
  const BitVector dv = sketch.ExtractUserSketch(1);
  const double alpha =
      static_cast<double>(du.HammingDistance(dv)) / sketch.config().k;
  VosEstimator estimator(sketch.config().k);
  const double s = estimator.EstimateCommonItems(400, 400, alpha,
                                                 sketch.beta());
  EXPECT_NEAR(s, 300.0, 30.0);
}

TEST_P(PsiKindTest, SerializationPreservesPsiKind) {
  const std::string path = ::testing::TempDir() + "/vos_psi_kind.bin";
  VosSketch original(Config(512, 1 << 13), 8);
  for (ItemId i = 0; i < 200; ++i) {
    original.Update({static_cast<UserId>(i % 8), i, Action::kInsert});
  }
  ASSERT_TRUE(VosSketchIo::Save(original, path).ok());
  auto loaded = VosSketchIo::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->config().psi_kind, GetParam());
  EXPECT_TRUE(loaded->IsCompatibleWith(original));
  // Buckets must agree after reload (ψ fully reconstructed from seed).
  for (ItemId i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->BucketOf(i), original.BucketOf(i));
  }
  std::remove(path.c_str());
}

TEST_P(PsiKindTest, DifferentKindsAreIncompatible) {
  VosConfig mixer = Config();
  mixer.psi_kind = PsiKind::kMixer;
  VosSketch a(mixer, 4);
  VosSketch b(Config(), 4);
  EXPECT_EQ(a.IsCompatibleWith(b), GetParam() == PsiKind::kMixer);
}

INSTANTIATE_TEST_SUITE_P(Families, PsiKindTest,
                         ::testing::Values(PsiKind::kMixer,
                                           PsiKind::kTwoUniversal,
                                           PsiKind::kTabulation),
                         [](const auto& info) {
                           switch (info.param) {
                             case PsiKind::kMixer:
                               return "Mixer";
                             case PsiKind::kTwoUniversal:
                               return "TwoUniversal";
                             case PsiKind::kTabulation:
                               return "Tabulation";
                           }
                           return "Unknown";
                         });

// ------------------------------------------- containment / overlap helpers

TEST(ContainmentTest, HandComputedValues) {
  VosEstimator estimator(64);
  EXPECT_DOUBLE_EQ(estimator.ContainmentFromCommon(30, 40), 0.75);
  EXPECT_DOUBLE_EQ(estimator.ContainmentFromCommon(0, 40), 0.0);
  EXPECT_DOUBLE_EQ(estimator.ContainmentFromCommon(10, 0), 0.0);
  // Noisy ŝ above n_u clamps to 1.
  EXPECT_DOUBLE_EQ(estimator.ContainmentFromCommon(50, 40), 1.0);
}

TEST(ContainmentTest, OverlapCoefficient) {
  VosEstimator estimator(64);
  EXPECT_DOUBLE_EQ(estimator.OverlapFromCommon(30, 40, 100), 0.75);
  EXPECT_DOUBLE_EQ(estimator.OverlapFromCommon(30, 100, 40), 0.75);
  EXPECT_DOUBLE_EQ(estimator.OverlapFromCommon(5, 0, 40), 0.0);
  EXPECT_DOUBLE_EQ(estimator.OverlapFromCommon(60, 40, 100), 1.0);  // clamp
}

TEST(ContainmentTest, UnclampedPassthrough) {
  VosEstimatorOptions options;
  options.clamp_to_feasible = false;
  VosEstimator estimator(64, options);
  EXPECT_DOUBLE_EQ(estimator.ContainmentFromCommon(50, 40), 1.25);
  EXPECT_DOUBLE_EQ(estimator.OverlapFromCommon(60, 40, 100), 1.5);
}

}  // namespace
}  // namespace vos::core

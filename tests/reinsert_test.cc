// Regression test: streams that delete and later re-insert the same edge
// (feasible per §II) must flow through the whole pipeline — sketches,
// exact store, and the tracked-set selection that builds the static view.

#include <gtest/gtest.h>

#include "core/vos_method.h"
#include "harness/experiment.h"
#include "stream/graph_stream.h"

namespace vos::harness {
namespace {

using stream::Action;
using stream::GraphStream;

GraphStream ReinsertingStream() {
  GraphStream s("reinsert", 6, 12);
  // Users 0..3 share items 0..5; edges churn: delete then re-insert.
  for (stream::UserId u = 0; u < 4; ++u) {
    for (stream::ItemId i = 0; i < 6; ++i) s.Append(u, i, Action::kInsert);
  }
  for (stream::UserId u = 0; u < 4; ++u) {
    s.Append(u, 0, Action::kDelete);
    s.Append(u, 1, Action::kDelete);
  }
  for (stream::UserId u = 0; u < 4; ++u) {
    s.Append(u, 0, Action::kInsert);  // re-insert after deletion
    s.Append(u, 6 + u, Action::kInsert);
  }
  return s;
}

TEST(ReinsertTest, StreamIsFeasible) {
  EXPECT_TRUE(ReinsertingStream().Validate().ok());
}

TEST(ReinsertTest, SelectTrackedSetCountsEdgesOnce) {
  const GraphStream s = ReinsertingStream();
  const TrackedSet tracked = SelectTrackedSet(s, 4, 0, 1);
  EXPECT_EQ(tracked.users.size(), 4u);
  // All C(4,2)=6 pairs share items in the ever-inserted graph.
  EXPECT_EQ(tracked.pairs.size(), 6u);
}

TEST(ReinsertTest, FullProtocolRunsOnReinsertingStream) {
  ExperimentConfig config;
  config.top_users = 4;
  config.num_checkpoints = 2;
  config.factory.base_k = 32;
  config.factory.seed = 5;
  auto result =
      RunAccuracyExperiment(ReinsertingStream(), {"VOS", "MinHash"}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->checkpoints.back().t, ReinsertingStream().size());
}

TEST(ReinsertTest, VosParityHandlesReinsertExactly) {
  core::VosConfig config;
  config.k = 1024;
  config.m = 1 << 14;
  core::VosMethod a(config, 2), b(config, 2);
  // a: plain insert of items 0..49 for both users.
  // b: same, but item 7 is deleted and re-inserted for user 0.
  for (stream::ItemId i = 0; i < 50; ++i) {
    a.Update({0, i, Action::kInsert});
    a.Update({1, i, Action::kInsert});
    b.Update({0, i, Action::kInsert});
    b.Update({1, i, Action::kInsert});
  }
  b.Update({0, 7, Action::kDelete});
  b.Update({0, 7, Action::kInsert});
  EXPECT_DOUBLE_EQ(a.EstimatePair(0, 1).common, b.EstimatePair(0, 1).common);
}

}  // namespace
}  // namespace vos::harness

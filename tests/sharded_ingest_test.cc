// Tests for the sharded ingestion engine: ShardRouter determinism,
// batched replay equivalence, and — the load-bearing property —
// ShardedVosSketch producing exactly the state of S independent
// VosSketches fed the routed sub-streams, for every shard count, thread
// count and pipeline mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/sharded_vos_method.h"
#include "core/sharded_vos_sketch.h"
#include "core/vos_method.h"
#include "core/vos_sketch.h"
#include "exact/exact_store.h"
#include "stream/graph_stream.h"
#include "stream/replayer.h"
#include "stream/shard_router.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::GraphStream;
using stream::ItemId;
using stream::ShardRouter;
using stream::StreamReplayer;
using stream::UserId;

/// A feasible fully dynamic stream: inserts with interleaved deletions of
/// previously inserted edges (per user, delete follows its insert).
std::vector<Element> DynamicStream(UserId users, size_t elements_target,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  elements.reserve(elements_target + elements_target / 4);
  size_t t = 0;
  while (elements.size() < elements_target) {
    const UserId user =
        static_cast<UserId>(rng.NextBounded(users));
    const ItemId item = static_cast<ItemId>(t++);
    elements.push_back({user, item, Action::kInsert});
    if (rng.NextBernoulli(0.25)) {
      elements.push_back({user, item, Action::kDelete});
    }
  }
  return elements;
}

ShardedVosConfig TestConfig(uint32_t shards, unsigned threads,
                            uint32_t k = 512, uint64_t m = 1 << 16) {
  ShardedVosConfig config;
  config.base.k = k;
  config.base.m = m;
  config.base.seed = 77;
  config.num_shards = shards;
  config.ingest_threads = threads;
  config.batch_size = 64;  // small so the pipeline exercises many batches
  config.queue_capacity = 4;  // exercise back-pressure
  return config;
}

/// Splits a stream into per-producer sub-streams by user (user % P), so
/// each user's whole history rides one lane — every lane's sub-stream
/// stays feasible under any cross-lane interleaving.
std::vector<std::vector<Element>> SplitByProducer(
    const std::vector<Element>& elements, unsigned producers) {
  std::vector<std::vector<Element>> lanes(producers);
  for (const Element& e : elements) {
    lanes[e.user % producers].push_back(e);
  }
  return lanes;
}

/// Flushed shard arrays and cardinalities of `sketch` equal `reference`'s.
void ExpectStateIdentical(const ShardedVosSketch& sketch,
                          const ShardedVosSketch& reference,
                          const std::string& label) {
  ASSERT_EQ(sketch.num_shards(), reference.num_shards()) << label;
  for (uint32_t s = 0; s < sketch.num_shards(); ++s) {
    EXPECT_TRUE(sketch.shard(s).array() == reference.shard(s).array())
        << label << " shard=" << s;
  }
  for (UserId u = 0; u < sketch.num_users(); ++u) {
    ASSERT_EQ(sketch.Cardinality(u), reference.Cardinality(u))
        << label << " user=" << u;
  }
}

// ------------------------------------------------------------ ShardRouter

TEST(ShardRouterTest, DeterministicAndComplete) {
  const ShardRouter router(4, 99);
  const ShardRouter twin(4, 99);
  std::vector<size_t> per_shard(4, 0);
  for (UserId u = 0; u < 10000; ++u) {
    const uint32_t s = router.ShardOf(u);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, twin.ShardOf(u));
    ++per_shard[s];
  }
  // Hash routing spreads dense user ids roughly evenly (no striping).
  for (size_t count : per_shard) {
    EXPECT_GT(count, 2000u);
    EXPECT_LT(count, 3000u);
  }
}

TEST(DenseShardMapTest, RankOrderAssignmentRoundTrips) {
  const ShardRouter router(4, 99);
  const stream::DenseShardMap map(router, 1000);
  ASSERT_EQ(map.num_shards(), 4u);
  ASSERT_EQ(map.num_users(), 1000u);
  UserId total = 0;
  for (uint32_t s = 0; s < 4; ++s) total += map.shard_size(s);
  EXPECT_EQ(total, 1000u) << "every user lives in exactly one shard";
  std::vector<UserId> next_local(4, 0);
  for (UserId u = 0; u < 1000; ++u) {
    const uint32_t s = map.ShardOf(u);
    EXPECT_EQ(s, router.ShardOf(u));
    // Rank-order: local ids are dense and increase with the global id.
    EXPECT_EQ(map.LocalOf(u), next_local[s]++);
    EXPECT_EQ(map.GlobalOf(s, map.LocalOf(u)), u) << "user " << u;
  }
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(next_local[s], map.shard_size(s));
  }
}

TEST(DenseShardMapTest, RouteRewritesToLocalsAndTags) {
  const ShardRouter router(3, 7);
  const stream::DenseShardMap map(router, 50);
  std::vector<Element> elements = DynamicStream(50, 300, 3);
  const std::vector<Element> originals = elements;
  std::vector<uint16_t> tags(elements.size());
  map.Route(elements.data(), elements.size(), tags.data());
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ(tags[i], router.ShardOf(originals[i].user));
    EXPECT_EQ(elements[i].user, map.LocalOf(originals[i].user));
    EXPECT_EQ(elements[i].item, originals[i].item);
    EXPECT_EQ(elements[i].action, originals[i].action);
  }
}

TEST(DenseShardMapTest, PartitionEmitsShardOwnedSubBatchesInLaneOrder) {
  const ShardRouter router(3, 7);
  const stream::DenseShardMap map(router, 50);
  const std::vector<Element> elements = DynamicStream(50, 300, 3);
  std::vector<std::vector<Element>> per_shard(3);
  map.Partition(elements.data(), elements.size(), &per_shard);

  // Reconstruct each shard's expected sub-stream (stream order, local
  // ids) and compare: Partition must preserve per-shard FIFO order.
  std::vector<std::vector<Element>> expected(3);
  size_t total = 0;
  for (const Element& e : elements) {
    Element local = e;
    local.user = map.LocalOf(e.user);
    expected[map.ShardOf(e.user)].push_back(local);
  }
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(per_shard[s], expected[s]) << "shard " << s;
    total += per_shard[s].size();
  }
  EXPECT_EQ(total, elements.size());
}

TEST(DenseShardMapDeathTest, RouteAndPartitionRejectOutOfRangeUsers) {
  // Regression: Route used to VOS_DCHECK only, so a Release build read
  // local_of_[user] out of bounds for a corrupt stream element. Both
  // ingest handoffs must abort loudly instead.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const ShardRouter router(2, 7);
  const stream::DenseShardMap map(router, 10);
  std::vector<Element> elements = {{10, 1, Action::kInsert}};
  std::vector<uint16_t> tags(1);
  EXPECT_DEATH(map.Route(elements.data(), 1, tags.data()), "out of range");
  std::vector<std::vector<Element>> per_shard(2);
  EXPECT_DEATH(map.Partition(elements.data(), 1, &per_shard),
               "out of range");
  // LocalOf is the read behind the synchronous ingest and query paths —
  // it must be always-on too, so sync-mode Update aborts rather than
  // routing a corrupt element to a garbage (shard, local id) in Release.
  EXPECT_DEATH(map.LocalOf(10), "out of range");
  ShardedVosSketch sync_sketch(TestConfig(2, /*threads=*/0), 10);
  EXPECT_DEATH(sync_sketch.Update({10, 1, Action::kInsert}),
               "out of range");
}

TEST(ShardRouterTest, PartitionAndTagAgreeWithShardOf) {
  const ShardRouter router(3, 7);
  const std::vector<Element> elements = DynamicStream(50, 500, 3);
  std::vector<uint16_t> tags(elements.size());
  router.Tag(elements.data(), elements.size(), tags.data());
  std::vector<std::vector<Element>> per_shard(3);
  router.Partition(elements.data(), elements.size(), &per_shard);
  size_t total = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    EXPECT_EQ(tags[i], router.ShardOf(elements[i].user));
  }
  for (uint32_t s = 0; s < 3; ++s) {
    total += per_shard[s].size();
    for (const Element& e : per_shard[s]) {
      EXPECT_EQ(router.ShardOf(e.user), s);
    }
  }
  EXPECT_EQ(total, elements.size());
}

// ---------------------------------------------------------- ReplayBatched

TEST(ReplayBatchedTest, SameElementsAndCheckpointsAsReplay) {
  GraphStream stream("test", 30, 1 << 20);
  for (const Element& e : DynamicStream(30, 157, 11)) stream.Append(e);

  for (size_t batch_size : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<Element> serial_elements, batched_elements;
    std::vector<size_t> serial_checkpoints, batched_checkpoints;
    StreamReplayer::Replay(
        stream, 5, [&](const Element& e) { serial_elements.push_back(e); },
        [&](size_t t) { serial_checkpoints.push_back(t); });
    size_t applied = 0;
    StreamReplayer::ReplayBatched(
        stream, 5, batch_size,
        [&](const Element* first, size_t count) {
          if (batch_size > 0) {
            EXPECT_LE(count, batch_size);
          }
          batched_elements.insert(batched_elements.end(), first,
                                  first + count);
          applied += count;
        },
        [&](size_t t) {
          // A checkpoint sees exactly the first t elements applied.
          EXPECT_EQ(applied, t);
          batched_checkpoints.push_back(t);
        });
    EXPECT_EQ(batched_elements, serial_elements) << "batch=" << batch_size;
    EXPECT_EQ(batched_checkpoints, serial_checkpoints)
        << "batch=" << batch_size;
  }
}

// ------------------------------------------------------- ShardedVosSketch

TEST(ShardedVosSketchTest, OneShardConfigEqualsBase) {
  const ShardedVosConfig config = TestConfig(1, 0);
  const VosConfig shard = ShardedVosSketch::ShardConfig(config, 0);
  EXPECT_EQ(shard.m, config.base.m);
  EXPECT_EQ(shard.seed, config.base.seed);
  EXPECT_EQ(shard.f_seed, config.base.f_seed);
}

TEST(ShardedVosSketchTest, OneShardMatchesPlainVosSketchBitForBit) {
  const std::vector<Element> elements = DynamicStream(40, 2000, 21);
  const ShardedVosConfig config = TestConfig(1, 0);
  VosSketch plain(config.base, 40);
  ShardedVosSketch sharded(config, 40);
  for (const Element& e : elements) {
    plain.Update(e);
    sharded.Update(e);
  }
  EXPECT_TRUE(sharded.shard(0).array() == plain.array());
  for (UserId u = 0; u < 40; ++u) {
    EXPECT_EQ(sharded.Cardinality(u), plain.Cardinality(u));
  }
}

/// The tentpole equivalence: for every shard count, each shard's state is
/// bit-identical to a standalone VosSketch (same ShardConfig, sized for
/// the shard's dense local id space) fed the routed sub-stream rewritten
/// to dense local ids — and therefore same-shard pair estimates equal the
/// standalone estimates exactly.
TEST(ShardedVosSketchTest, ShardsMatchIndependentSketchesOnRoutedSubstreams) {
  const UserId users = 60;
  const std::vector<Element> elements = DynamicStream(users, 4000, 33);
  for (uint32_t shards : {1u, 2u, 3u, 4u}) {
    const ShardedVosConfig config = TestConfig(shards, 0);
    ShardedVosSketch sharded(config, users);
    sharded.UpdateBatch(elements.data(), elements.size());

    // Independent references: one standalone sketch per shard — sized
    // for that shard's users only — fed the routed sub-stream in
    // shard-local coordinates.
    std::vector<VosSketch> references;
    for (uint32_t s = 0; s < shards; ++s) {
      references.emplace_back(ShardedVosSketch::ShardConfig(config, s),
                              sharded.ShardUserCount(s));
    }
    for (const Element& e : elements) {
      Element local = e;
      local.user = sharded.LocalIdOf(e.user);
      references[sharded.ShardOf(e.user)].Update(local);
    }
    for (uint32_t s = 0; s < shards; ++s) {
      EXPECT_TRUE(sharded.shard(s).array() == references[s].array())
          << "shards=" << shards << " shard=" << s;
    }
    for (UserId u = 0; u < users; ++u) {
      EXPECT_EQ(sharded.Cardinality(u),
                references[sharded.ShardOf(u)].Cardinality(
                    sharded.LocalIdOf(u)))
          << "user " << u;
    }

    // Same-shard pair estimates are bit-identical to the standalone
    // estimator on the reference sketch.
    VosEstimator estimator(config.base.k);
    size_t same_shard_pairs = 0;
    for (UserId u = 0; u < users; ++u) {
      for (UserId v = u + 1; v < users; ++v) {
        if (sharded.ShardOf(u) != sharded.ShardOf(v)) continue;
        ++same_shard_pairs;
        const VosSketch& ref = references[sharded.ShardOf(u)];
        const BitVector du = ref.ExtractUserSketch(sharded.LocalIdOf(u));
        const BitVector dv = ref.ExtractUserSketch(sharded.LocalIdOf(v));
        const double alpha =
            static_cast<double>(du.HammingDistance(dv)) / config.base.k;
        const PairEstimate expected =
            estimator.Estimate(ref.Cardinality(sharded.LocalIdOf(u)),
                               ref.Cardinality(sharded.LocalIdOf(v)), alpha,
                               ref.beta());
        const PairEstimate actual = sharded.EstimatePair(u, v);
        EXPECT_EQ(actual.common, expected.common)
            << "shards=" << shards << " pair=(" << u << "," << v << ")";
        EXPECT_EQ(actual.jaccard, expected.jaccard);
      }
    }
    EXPECT_GT(same_shard_pairs, 0u);
  }
}

TEST(ShardedVosSketchTest, MemoryBitsIndependentOfShardCountAndUpdates) {
  // The dense remap is the point: per-user state must NOT scale with S.
  // m divisible by 64·S so per-shard word rounding cannot differ.
  const UserId users = 512;
  const auto total_bits = [&](uint32_t shards) {
    ShardedVosConfig config = TestConfig(shards, 0, /*k=*/256,
                                         /*m=*/uint64_t{1} << 16);
    ShardedVosSketch sketch(config, users);
    return sketch.MemoryBits();
  };
  const size_t at2 = total_bits(2);
  EXPECT_EQ(at2, total_bits(4));
  EXPECT_EQ(at2, total_bits(8));
  // The S=1 fast path skips the remap tables (64 bits/user); everything
  // else — arrays, counters, epochs — matches.
  EXPECT_EQ(total_bits(1) + users * 64u, at2);

  // Fixed-size: ingesting must not change the reported memory.
  ShardedVosConfig config = TestConfig(4, 0, 256, uint64_t{1} << 16);
  ShardedVosSketch sketch(config, users);
  const size_t before = sketch.MemoryBits();
  const std::vector<Element> elements = DynamicStream(users, 3000, 17);
  sketch.UpdateBatch(elements.data(), elements.size());
  EXPECT_EQ(sketch.MemoryBits(), before);

  // And the per-user counters/epochs are no longer invisible: the total
  // exceeds the arrays alone.
  size_t arrays = 0;
  for (uint32_t s = 0; s < 4; ++s) arrays += sketch.shard(s).MemoryBits();
  EXPECT_GT(before, arrays);
}

/// The async pipeline must land on exactly the synchronous pipeline's
/// state for every thread count — in-shard order is preserved through
/// tagging, shared batches and per-worker queues.
TEST(ShardedVosSketchTest, AsyncPipelineMatchesSynchronousForAllThreadCounts) {
  const UserId users = 50;
  const std::vector<Element> elements = DynamicStream(users, 5000, 55);
  for (uint32_t shards : {1u, 2u, 4u}) {
    ShardedVosSketch reference(TestConfig(shards, 0), users);
    reference.UpdateBatch(elements.data(), elements.size());
    for (unsigned threads : {1u, 2u, 8u}) {
      ShardedVosSketch sharded(TestConfig(shards, threads), users);
      // Mix the per-element and batched entry points (order must hold).
      const size_t split = elements.size() / 3;
      for (size_t t = 0; t < split; ++t) sharded.Update(elements[t]);
      sharded.UpdateBatch(elements.data() + split, elements.size() - split);
      ASSERT_TRUE(sharded.Flush().ok());
      EXPECT_FALSE(sharded.HasPendingIngest());
      for (uint32_t s = 0; s < shards; ++s) {
        EXPECT_TRUE(sharded.shard(s).array() == reference.shard(s).array())
            << "shards=" << shards << " threads=" << threads
            << " shard=" << s;
      }
      for (UserId u = 0; u < users; ++u) {
        ASSERT_EQ(sharded.Cardinality(u), reference.Cardinality(u))
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

/// The multi-producer tentpole equivalence: P concurrent producer
/// threads, each feeding its own per-user sub-stream through its own
/// (producer, shard) queues, land on exactly the state of synchronously
/// routing the same per-producer streams — across the full
/// {producers} × {shards} × {queue capacity} matrix. This is the test
/// the TSAN CI job leans on for the new queue topology.
TEST(ShardedVosSketchTest, MultiProducerMatrixMatchesSynchronousRouting) {
  const UserId users = 64;
  const std::vector<Element> elements = DynamicStream(users, 6000, 91);
  for (const unsigned producers : {1u, 2u, 4u, 8u}) {
    const std::vector<std::vector<Element>> lanes =
        SplitByProducer(elements, producers);
    for (const uint32_t shards : {1u, 4u}) {
      // Reference: synchronous routing of the same per-producer streams,
      // applied lane by lane (the final state is interleaving-invariant —
      // XOR flips and ±1 counters commute — so any lane order works).
      ShardedVosSketch reference(TestConfig(shards, 0), users);
      for (const std::vector<Element>& lane : lanes) {
        reference.UpdateBatch(lane.data(), lane.size());
      }
      for (const size_t capacity : {size_t{1}, size_t{64}}) {
        ShardedVosConfig config = TestConfig(shards, /*threads=*/2);
        config.ingest_producers = producers;
        config.queue_capacity = capacity;
        config.batch_size = 48;
        ShardedVosSketch sketch(config, users);
        ASSERT_EQ(sketch.num_producers(), producers);
        std::vector<std::thread> threads;
        threads.reserve(producers);
        for (unsigned p = 0; p < producers; ++p) {
          threads.emplace_back([&, p] {
            const std::vector<Element>& lane = lanes[p];
            // Mix the per-element and batched entry points: lane order
            // must hold across both.
            const size_t split = lane.size() / 3;
            for (size_t t = 0; t < split; ++t) sketch.Update(lane[t], p);
            const size_t chunk = 100;  // several sub-batches per queue
            for (size_t t = split; t < lane.size(); t += chunk) {
              sketch.UpdateBatch(lane.data() + t,
                                 std::min(chunk, lane.size() - t), p);
            }
            EXPECT_TRUE(sketch.FlushProducer(p).ok());
          });
        }
        for (std::thread& t : threads) t.join();
        ASSERT_TRUE(sketch.Flush().ok());
        EXPECT_FALSE(sketch.HasPendingIngest());
        ExpectStateIdentical(sketch, reference,
                             "producers=" + std::to_string(producers) +
                                 " shards=" + std::to_string(shards) +
                                 " capacity=" + std::to_string(capacity));
      }
    }
  }
}

/// Flush under back-pressure: capacity-1 queues with tiny batches force
/// producers to block on full queues repeatedly, while each lane calls
/// FlushProducer mid-stream with every other lane still feeding. The
/// barrier must neither deadlock nor lose elements.
TEST(ShardedVosSketchTest, FlushProducerUnderBackPressure) {
  const UserId users = 48;
  // CI's sanitizer legs raise the lane count (VOS_STRESS_PRODUCERS=8) so
  // the park/unpark handshakes run with more producers than cores.
  unsigned producers = 4;
  if (const char* env = std::getenv("VOS_STRESS_PRODUCERS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1 && parsed <= 64) producers = static_cast<unsigned>(parsed);
  }
  const uint32_t shards = 4;
  const std::vector<Element> elements = DynamicStream(users, 4000, 13);
  const std::vector<std::vector<Element>> lanes =
      SplitByProducer(elements, producers);

  ShardedVosSketch reference(TestConfig(shards, 0), users);
  for (const std::vector<Element>& lane : lanes) {
    reference.UpdateBatch(lane.data(), lane.size());
  }

  ShardedVosConfig config = TestConfig(shards, /*threads=*/2);
  config.ingest_producers = producers;
  config.queue_capacity = 1;  // every second sub-batch blocks the lane
  config.batch_size = 8;
  ShardedVosSketch sketch(config, users);
  // HasPendingIngest is polled concurrently with the feeding lanes: the
  // answer is advisory mid-ingest, but the read itself must be race-free
  // (this is what the TSAN job checks here).
  std::atomic<bool> stop_polling{false};
  std::thread monitor([&] {
    while (!stop_polling.load()) (void)sketch.HasPendingIngest();
  });
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::vector<Element>& lane = lanes[p];
      for (size_t t = 0; t < lane.size(); ++t) {
        sketch.Update(lane[t], p);
        // A mid-stream flush per ~quarter: the lane barrier must complete
        // while the other three lanes keep their queues saturated.
        if (t % (lane.size() / 4 + 1) == 0) {
          EXPECT_TRUE(sketch.FlushProducer(p).ok());
        }
      }
      EXPECT_TRUE(sketch.FlushProducer(p).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  stop_polling.store(true);
  monitor.join();
  ASSERT_TRUE(sketch.Flush().ok());
  EXPECT_FALSE(sketch.HasPendingIngest());
  ExpectStateIdentical(sketch, reference, "flush-under-back-pressure");
}

TEST(ShardedVosSketchTest, SyncModeForcesSingleProducerLane) {
  ShardedVosConfig config = TestConfig(4, /*threads=*/0);
  config.ingest_producers = 8;
  const ShardedVosSketch sketch(config, 16);
  EXPECT_EQ(sketch.num_producers(), 1u)
      << "inline ingestion is single-threaded by contract";
}

TEST(ShardedVosSketchTest, CrossShardEstimatesTrackExactTruth) {
  // Two users with a planted 60% overlap, plus background fill. Whatever
  // shards they land in, the cross-shard estimator should recover the
  // overlap to sketch accuracy.
  const UserId users = 40;
  ShardedVosConfig config = TestConfig(4, 0, /*k=*/4096, /*m=*/1 << 20);
  ShardedVosSketch sharded(config, users);
  exact::ExactStore exact(users);
  const auto apply = [&](const Element& e) {
    sharded.Update(e);
    exact.Update(e);
  };
  for (uint32_t i = 0; i < 500; ++i) {
    apply({0, i, Action::kInsert});
    apply({1, i < 300 ? i : i + 10000, Action::kInsert});
  }
  for (UserId u = 2; u < users; ++u) {
    for (uint32_t i = 0; i < 100; ++i) {
      apply({u, 20000 + u * 1000 + i, Action::kInsert});
    }
  }
  const double truth = static_cast<double>(exact.CommonItems(0, 1));
  const PairEstimate estimate = sharded.EstimatePair(0, 1);
  EXPECT_NEAR(estimate.common, truth, 60.0);  // ±~3σ at k=4096
}

// ------------------------------------------------------- ShardedVosMethod

TEST(ShardedVosMethodTest, CachedAndUncachedEstimatesAgree) {
  const UserId users = 30;
  const std::vector<Element> elements = DynamicStream(users, 3000, 71);
  ShardedVosConfig config = TestConfig(4, 2);
  ShardedVosMethod method(config, users);
  method.UpdateBatch(elements.data(), elements.size());
  ASSERT_TRUE(method.FlushIngest().ok());

  std::vector<UserId> tracked;
  for (UserId u = 0; u < users; u += 2) tracked.push_back(u);
  // Uncached estimates first (no PrepareQuery yet).
  std::vector<PairEstimate> uncached;
  for (size_t i = 0; i < tracked.size(); ++i) {
    for (size_t j = i + 1; j < tracked.size(); ++j) {
      uncached.push_back(method.EstimatePair(tracked[i], tracked[j]));
    }
  }
  method.PrepareQuery(tracked);
  size_t idx = 0;
  for (size_t i = 0; i < tracked.size(); ++i) {
    for (size_t j = i + 1; j < tracked.size(); ++j, ++idx) {
      const PairEstimate cached = method.EstimatePair(tracked[i], tracked[j]);
      EXPECT_EQ(cached.common, uncached[idx].common)
          << "pair=(" << tracked[i] << "," << tracked[j] << ")";
      EXPECT_EQ(cached.jaccard, uncached[idx].jaccard);
    }
  }
  method.InvalidateQueryCache();
  EXPECT_EQ(method.EstimatePair(tracked[0], tracked[1]).common,
            uncached[0].common);
}

/// Producer-lane plumbing through the SimilarityMethod interface: driving
/// "VOS-sharded" with concurrent lanes via the base-class virtuals lands
/// on the state of the default single-producer path.
TEST(ShardedVosMethodTest, ProducerLaneIngestMatchesSingleProducer) {
  const UserId users = 40;
  const std::vector<Element> elements = DynamicStream(users, 4000, 29);
  ShardedVosConfig config = TestConfig(4, /*threads=*/2);
  config.ingest_producers = 3;

  ShardedVosMethod reference(TestConfig(4, 0), users);
  reference.UpdateBatch(elements.data(), elements.size());
  ASSERT_TRUE(reference.FlushIngest().ok());

  ShardedVosMethod method(config, users);
  SimilarityMethod& base = method;  // exercise the virtual dispatch
  EXPECT_EQ(base.ConcurrentIngestProducers(), 3u);
  const std::vector<std::vector<Element>> lanes = SplitByProducer(elements, 3);
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < 3; ++p) {
    threads.emplace_back([&, p] {
      base.UpdateBatch(lanes[p].data(), lanes[p].size(), p);
      EXPECT_TRUE(base.FlushIngest(p).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(base.FlushIngest().ok());

  for (UserId u = 0; u < users; ++u) {
    for (UserId v = u + 1; v < users; ++v) {
      const PairEstimate expected = reference.EstimatePair(u, v);
      const PairEstimate actual = method.EstimatePair(u, v);
      ASSERT_EQ(actual.common, expected.common)
          << "pair=(" << u << "," << v << ")";
      ASSERT_EQ(actual.jaccard, expected.jaccard);
    }
  }
}

// ---------------------------------------------------------- dirty tracking

TEST(DirtyTrackingTest, UpdateMarksOnceAndClearResets) {
  VosSketch sketch(ShardedVosSketch::ShardConfig(TestConfig(1, 0), 0), 10);
  EXPECT_TRUE(sketch.dirty_users().empty());
  sketch.Update({3, 100, Action::kInsert});
  sketch.Update({3, 101, Action::kInsert});
  sketch.Update({7, 102, Action::kInsert});
  EXPECT_EQ(sketch.dirty_users(), (std::vector<UserId>{3, 7}));
  EXPECT_TRUE(sketch.IsDirty(3));
  EXPECT_FALSE(sketch.IsDirty(4));
  sketch.ClearDirtyUsers();
  EXPECT_TRUE(sketch.dirty_users().empty());
  EXPECT_FALSE(sketch.IsDirty(3));
  sketch.Update({3, 100, Action::kDelete});
  EXPECT_EQ(sketch.dirty_users(), (std::vector<UserId>{3}));
}

TEST(DirtyTrackingTest, MergeFromMarksUsersWithForeignUpdates) {
  const VosConfig config = ShardedVosSketch::ShardConfig(TestConfig(1, 0), 0);
  VosSketch a(config, 10), b(config, 10);
  a.Update({1, 5, Action::kInsert});
  b.Update({2, 6, Action::kInsert});
  a.ClearDirtyUsers();
  a.MergeFrom(b);
  EXPECT_EQ(a.dirty_users(), (std::vector<UserId>{2}));
}

}  // namespace
}  // namespace vos::core

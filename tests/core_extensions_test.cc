// Unit tests for the core extensions: sketch serialization (VosSketchIo),
// distributed merge (VosSketch::MergeFrom), confidence intervals
// (EstimateWithConfidence), the SimilarityIndex, and VosDrift.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "common/random.h"
#include "core/similarity_index.h"
#include "core/vos_drift.h"
#include "core/vos_io.h"
#include "core/vos_method.h"
#include "stream/dataset.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

VosConfig TestConfig(uint32_t k = 512, uint64_t m = 1 << 14,
                     uint64_t seed = 11) {
  VosConfig config;
  config.k = k;
  config.m = m;
  config.seed = seed;
  return config;
}

/// A feasible random insertion-only workload.
std::vector<Element> RandomInsertions(UserId users, size_t count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  std::unordered_set<uint64_t> live;
  while (elements.size() < count) {
    const auto u = static_cast<UserId>(rng.NextBounded(users));
    const auto i = static_cast<ItemId>(rng.NextBounded(10000));
    if (live.insert(stream::EdgeKey(u, i)).second) {
      elements.push_back({u, i, Action::kInsert});
    }
  }
  return elements;
}

// ------------------------------------------------------------ VosSketchIo

TEST(VosSketchIoTest, SaveLoadRoundTripsBitForBit) {
  const std::string path = ::testing::TempDir() + "/vos_sketch_io.bin";
  VosSketch original(TestConfig(), 40);
  for (const Element& e : RandomInsertions(40, 600, 3)) original.Update(e);

  ASSERT_TRUE(VosSketchIo::Save(original, path).ok());
  auto loaded = VosSketchIo::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(loaded->array() == original.array());
  EXPECT_DOUBLE_EQ(loaded->beta(), original.beta());
  for (UserId u = 0; u < 40; ++u) {
    EXPECT_EQ(loaded->Cardinality(u), original.Cardinality(u));
  }
  // Loaded sketch remains usable: same estimates, updatable.
  EXPECT_TRUE(loaded->ExtractUserSketch(7) == original.ExtractUserSketch(7));
  loaded->Update({0, 99999, Action::kInsert});
  std::remove(path.c_str());
}

TEST(VosSketchIoTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_EQ(VosSketchIo::Load("/nonexistent/sketch.bin").status().code(),
            StatusCode::kIoError);

  const std::string path = ::testing::TempDir() + "/vos_corrupt.bin";
  std::ofstream(path, std::ios::binary) << "VOSSKTCHgarbage";
  EXPECT_EQ(VosSketchIo::Load(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(VosSketchIoTest, LoadDetectsBitFlip) {
  const std::string path = ::testing::TempDir() + "/vos_bitflip.bin";
  VosSketch sketch(TestConfig(), 10);
  for (const Element& e : RandomInsertions(10, 100, 5)) sketch.Update(e);
  ASSERT_TRUE(VosSketchIo::Save(sketch, path).ok());

  // Flip one byte in the middle of the payload.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(64);
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(64);
  byte = static_cast<char>(byte ^ 0x40);
  file.write(&byte, 1);
  file.close();

  EXPECT_EQ(VosSketchIo::Load(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(VosSketchIoTest, LoadRejectsTruncation) {
  const std::string path = ::testing::TempDir() + "/vos_truncated.bin";
  VosSketch sketch(TestConfig(), 10);
  ASSERT_TRUE(VosSketchIo::Save(sketch, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> content(size / 2);
  in.read(content.data(), static_cast<std::streamsize>(content.size()));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(content.data(), static_cast<std::streamsize>(content.size()));
  EXPECT_EQ(VosSketchIo::Load(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

/// Independent re-implementation of the serialized format for the legacy
/// v1 layout (no f_seed field), byte-for-byte per the header comment in
/// core/vos_io.h — deliberately NOT sharing code with Save, so this test
/// pins the on-disk format itself.
void WriteV1File(const VosSketch& sketch, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const auto write_pod = [&out](const auto& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  out.write(VosSketchIo::kMagic, 8);
  write_pod(uint32_t{1});  // the legacy version
  write_pod(sketch.config().k);
  write_pod(sketch.config().m);
  write_pod(sketch.config().seed);
  write_pod(static_cast<uint8_t>(sketch.config().psi_kind));
  // v1 header ends here: no f_seed field.
  const std::vector<uint64_t>& words = sketch.array().words();
  std::vector<uint32_t> cards(sketch.num_users());
  for (UserId u = 0; u < sketch.num_users(); ++u) {
    cards[u] = sketch.Cardinality(u);
  }
  write_pod(static_cast<uint32_t>(cards.size()));
  write_pod(static_cast<uint64_t>(words.size()));
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(uint64_t)));
  out.write(reinterpret_cast<const char*>(cards.data()),
            static_cast<std::streamsize>(cards.size() * sizeof(uint32_t)));
  uint64_t checksum = 0x5b5e1ab1eULL;
  uint64_t index = 0;
  for (uint64_t w : words) checksum ^= hash::Hash64(w, ++index);
  for (uint32_t c : cards) checksum ^= hash::Hash64(c, ++index);
  write_pod(checksum);
}

TEST(VosSketchIoTest, LoadReadsLegacyV1FilesWithDefaultFSeed) {
  // A v1 sketch predates VosConfig::f_seed, so it was necessarily built
  // with the legacy default family (f_seed == 0 ⇒ derived from seed).
  // Loading one must restore that exact family, not reject the file.
  const std::string path = ::testing::TempDir() + "/vos_sketch_v1.bin";
  VosSketch original(TestConfig(), 40);
  for (const Element& e : RandomInsertions(40, 600, 3)) original.Update(e);

  WriteV1File(original, path);
  auto loaded = VosSketchIo::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_TRUE(loaded->array() == original.array());
  EXPECT_TRUE(loaded->IsCompatibleWith(original))
      << "v1 load must re-derive the legacy default f family";
  for (UserId u = 0; u < 40; ++u) {
    EXPECT_EQ(loaded->Cardinality(u), original.Cardinality(u));
  }
  // Digests reconstruct through the same f cells — the property a wrong
  // f seed would break even with an identical array.
  EXPECT_TRUE(loaded->ExtractUserSketch(7) == original.ExtractUserSketch(7));

  // The write format stays v2: saving the loaded sketch and loading it
  // back round-trips through the current format bit-for-bit.
  const std::string resaved = ::testing::TempDir() + "/vos_sketch_v1_re.bin";
  ASSERT_TRUE(VosSketchIo::Save(*loaded, resaved).ok());
  auto reloaded = VosSketchIo::Load(resaved);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded->array() == original.array());
  EXPECT_TRUE(reloaded->IsCompatibleWith(original));
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(VosSketchIoTest, LoadRejectsVersionsOutsideSupportedRange) {
  for (const uint32_t version : {0u, VosSketchIo::kVersion + 1}) {
    const std::string path = ::testing::TempDir() + "/vos_sketch_v" +
                             std::to_string(version) + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(VosSketchIo::kMagic, 8);
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.close();
    EXPECT_EQ(VosSketchIo::Load(path).status().code(),
              StatusCode::kCorruption)
        << "version " << version;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------- MergeFrom

TEST(VosMergeTest, UserPartitionedShardsMergeToMonolithicSketch) {
  const VosConfig config = TestConfig();
  VosSketch monolithic(config, 60);
  VosSketch shard_a(config, 60);
  VosSketch shard_b(config, 60);

  auto elements = RandomInsertions(60, 900, 7);
  // Add some deletions to exercise the fully dynamic path.
  for (size_t i = 0; i < 150; ++i) {
    Element del = elements[i];
    del.action = Action::kDelete;
    elements.push_back(del);
  }
  for (const Element& e : elements) {
    monolithic.Update(e);
    // Partition by user parity.
    (e.user % 2 == 0 ? shard_a : shard_b).Update(e);
  }
  shard_a.MergeFrom(shard_b);

  EXPECT_TRUE(shard_a.array() == monolithic.array());
  for (UserId u = 0; u < 60; ++u) {
    EXPECT_EQ(shard_a.Cardinality(u), monolithic.Cardinality(u));
  }
  EXPECT_DOUBLE_EQ(shard_a.beta(), monolithic.beta());
}

TEST(VosMergeTest, CompatibilityChecks) {
  VosSketch a(TestConfig(512, 1 << 14, 1), 10);
  VosSketch same(TestConfig(512, 1 << 14, 1), 10);
  VosSketch diff_seed(TestConfig(512, 1 << 14, 2), 10);
  VosSketch diff_k(TestConfig(256, 1 << 14, 1), 10);
  VosSketch diff_users(TestConfig(512, 1 << 14, 1), 11);
  EXPECT_TRUE(a.IsCompatibleWith(same));
  EXPECT_FALSE(a.IsCompatibleWith(diff_seed));
  EXPECT_FALSE(a.IsCompatibleWith(diff_k));
  EXPECT_FALSE(a.IsCompatibleWith(diff_users));
}

TEST(VosMergeTest, MergeIsCommutativeOnArrays) {
  const VosConfig config = TestConfig();
  VosSketch ab(config, 20), ba(config, 20);
  VosSketch a(config, 20), b(config, 20);
  for (const Element& e : RandomInsertions(20, 200, 9)) a.Update(e);
  for (const Element& e : RandomInsertions(20, 200, 10)) b.Update(e);
  // NOTE: the two shards here overlap in (user, item) pairs, so the merged
  // *cardinalities* are not meaningful set sizes; the array algebra is
  // still commutative, which is what this test pins.
  ab = a;
  ab.MergeFrom(b);
  ba = b;
  ba.MergeFrom(a);
  EXPECT_TRUE(ab.array() == ba.array());
}

// -------------------------------------------------- EstimateWithConfidence

TEST(ConfidenceIntervalTest, BandContainsPointEstimateAndOrdersCorrectly) {
  VosEstimator estimator(4096);
  const double alpha = estimator.ExpectedAlpha(200, 0.05);
  const auto interval =
      estimator.EstimateWithConfidence(500, 500, alpha, 0.05);
  EXPECT_LE(interval.lo, interval.common);
  EXPECT_GE(interval.hi, interval.common);
  EXPECT_GT(interval.sigma, 0.0);
  // Wider z, wider band.
  const auto wide =
      estimator.EstimateWithConfidence(500, 500, alpha, 0.05, 3.0);
  EXPECT_LE(wide.lo, interval.lo);
  EXPECT_GE(wide.hi, interval.hi);
}

TEST(ConfidenceIntervalTest, CoverageIsApproximatelyNominal) {
  // Simulate the §IV model; the 95% band should cover the true s in
  // roughly 95% of trials (delta-method + normal approximation: accept
  // [90%, 99%]).
  constexpr uint32_t k = 4096;
  constexpr double beta = 0.08;
  constexpr double n_items = 800;
  constexpr double n_delta = 400;
  constexpr double true_s = n_items - n_delta / 2;
  VosEstimator estimator(k);
  Rng rng(31);
  const double p_bit = estimator.ExpectedAlpha(n_delta, beta);
  int covered = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    size_t ones = 0;
    for (uint32_t j = 0; j < k; ++j) ones += rng.NextBernoulli(p_bit);
    const double alpha = static_cast<double>(ones) / k;
    const auto interval =
        estimator.EstimateWithConfidence(n_items, n_items, alpha, beta);
    covered += (interval.lo <= true_s && true_s <= interval.hi);
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_GE(coverage, 0.90);
  EXPECT_LE(coverage, 0.995);
}

// ----------------------------------------------------------- SimilarityIndex

TEST(SimilarityIndexTest, TopKFindsPlantedNeighbor) {
  VosSketch sketch(TestConfig(4096, 1 << 18, 21), 30);
  // User 0 and user 1 share 90 of 100 items; everyone else is disjoint.
  for (ItemId i = 0; i < 100; ++i) {
    sketch.Update({0, i, Action::kInsert});
    sketch.Update({1, i < 90 ? i : i + 5000, Action::kInsert});
  }
  for (UserId u = 2; u < 30; ++u) {
    for (ItemId i = 0; i < 100; ++i) {
      sketch.Update({u, 100000 + u * 1000 + i, Action::kInsert});
    }
  }
  SimilarityIndex index(sketch);
  std::vector<UserId> candidates;
  for (UserId u = 0; u < 30; ++u) candidates.push_back(u);
  index.Rebuild(candidates);
  EXPECT_EQ(index.candidate_count(), 30u);

  const auto top = index.TopK(0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].user, 1u);
  EXPECT_GT(top[0].jaccard, 0.6);
  EXPECT_LT(top[1].jaccard, 0.2);  // everyone else is dissimilar
  EXPECT_NEAR(top[0].common, 90.0, 12.0);
}

TEST(SimilarityIndexTest, TopKExcludesQueryAndCapsK) {
  VosSketch sketch(TestConfig(), 5);
  for (UserId u = 0; u < 5; ++u) {
    sketch.Update({u, 7, Action::kInsert});
  }
  SimilarityIndex index(sketch);
  index.Rebuild({0, 1, 2, 3, 4});
  const auto top = index.TopK(2, 100);
  EXPECT_EQ(top.size(), 4u);  // 5 candidates minus the query
  for (const auto& entry : top) EXPECT_NE(entry.user, 2u);
}

TEST(SimilarityIndexTest, AllPairsAboveThreshold) {
  VosSketch sketch(TestConfig(4096, 1 << 18, 23), 6);
  // Two planted near-duplicate clusters: {0,1} and {2,3}; 4, 5 singletons.
  for (ItemId i = 0; i < 80; ++i) {
    sketch.Update({0, i, Action::kInsert});
    sketch.Update({1, i, Action::kInsert});
    sketch.Update({2, 1000 + i, Action::kInsert});
    sketch.Update({3, 1000 + (i < 60 ? i : i + 500), Action::kInsert});
    sketch.Update({4, 2000 + i, Action::kInsert});
    sketch.Update({5, 3000 + i, Action::kInsert});
  }
  SimilarityIndex index(sketch);
  index.Rebuild({0, 1, 2, 3, 4, 5});
  const auto pairs = index.AllPairsAbove(0.5);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].u, 0u);  // J≈1 sorts first
  EXPECT_EQ(pairs[0].v, 1u);
  EXPECT_EQ(pairs[1].u, 2u);
  EXPECT_EQ(pairs[1].v, 3u);
  EXPECT_GT(pairs[0].jaccard, pairs[1].jaccard);
}

TEST(SimilarityIndexTest, SnapshotSemantics) {
  VosSketch sketch(TestConfig(2048, 1 << 16, 29), 4);
  for (ItemId i = 0; i < 50; ++i) {
    sketch.Update({0, i, Action::kInsert});
    sketch.Update({1, i, Action::kInsert});
  }
  SimilarityIndex index(sketch);
  index.Rebuild({0, 1});
  const double before = index.TopK(0, 1)[0].jaccard;

  // Mutate the sketch: user 1 unsubscribes everything. The snapshot must
  // keep answering from the old state until Rebuild.
  for (ItemId i = 0; i < 50; ++i) sketch.Update({1, i, Action::kDelete});
  const double stale = index.TopK(0, 1)[0].jaccard;
  // The query digest is extracted live, so the estimate can move, but the
  // candidate digest must be the snapshot; after Rebuild the pair reads
  // near zero.
  index.Rebuild({0, 1});
  const double after = index.TopK(0, 1)[0].jaccard;
  EXPECT_GT(before, 0.8);
  EXPECT_LT(after, 0.25);
  (void)stale;
}

// ------------------------------------------------------------------ VosDrift

TEST(VosDriftTest, UnchangedUserHasZeroDriftFullStability) {
  const VosConfig config = TestConfig(2048, 1 << 16, 33);
  VosSketch before(config, 10);
  for (ItemId i = 0; i < 100; ++i) before.Update({3, i, Action::kInsert});
  VosSketch after = before;  // identical snapshot

  VosDrift drift(before, after);
  EXPECT_DOUBLE_EQ(drift.EstimateDrift(3), 0.0);
  EXPECT_DOUBLE_EQ(drift.EstimateStability(3), 1.0);
  EXPECT_DOUBLE_EQ(drift.delta_beta(), 0.0);
}

TEST(VosDriftTest, DetectsKnownChurn) {
  const VosConfig config = TestConfig(4096, 1 << 18, 35);
  VosSketch before(config, 10);
  for (ItemId i = 0; i < 200; ++i) before.Update({3, i, Action::kInsert});

  VosSketch after = before;
  // User 3 churns: drops 50 items, adds 50 new → |Δ| = 100.
  for (ItemId i = 0; i < 50; ++i) after.Update({3, i, Action::kDelete});
  for (ItemId i = 0; i < 50; ++i) {
    after.Update({3, 10000 + i, Action::kInsert});
  }
  // Background churn by other users (contaminates the delta array).
  for (UserId u = 4; u < 10; ++u) {
    for (ItemId i = 0; i < 100; ++i) {
      after.Update({u, 20000 + u * 1000 + i, Action::kInsert});
    }
  }

  VosDrift drift(before, after);
  EXPECT_NEAR(drift.EstimateDrift(3), 100.0, 15.0);
  // Stability: s = (200+200-100)/2 = 150, J = 150/250 = 0.6.
  EXPECT_NEAR(drift.EstimateStability(3), 0.6, 0.08);
  // An untouched user stays stable despite others' churn.
  EXPECT_LT(drift.EstimateDrift(2), 12.0);
}

TEST(VosDriftTest, DoubleToggleCancels) {
  const VosConfig config = TestConfig(1024, 1 << 14, 37);
  VosSketch before(config, 2);
  for (ItemId i = 0; i < 60; ++i) before.Update({0, i, Action::kInsert});
  VosSketch after = before;
  // Unsubscribe then resubscribe the same items: net drift 0.
  for (ItemId i = 0; i < 30; ++i) after.Update({0, i, Action::kDelete});
  for (ItemId i = 0; i < 30; ++i) after.Update({0, i, Action::kInsert});
  VosDrift drift(before, after);
  EXPECT_DOUBLE_EQ(drift.EstimateDrift(0), 0.0);
  EXPECT_DOUBLE_EQ(drift.EstimateStability(0), 1.0);
}

}  // namespace
}  // namespace vos::core

// Property sweeps over the §IV estimator as a mathematical object:
// monotonicity, inversion, and confidence-width scaling invariants that
// must hold for every sketch size. These complement the Monte-Carlo checks
// in core_test.cc with deterministic, exhaustive-grid guarantees.

#include <gtest/gtest.h>

#include <cmath>

#include "core/vos_estimator.h"

namespace vos::core {
namespace {

class EstimatorPropertyTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  VosEstimator MakeEstimator() const { return VosEstimator(GetParam()); }
};

TEST_P(EstimatorPropertyTest, ExpectedAlphaIsMonotoneInDelta) {
  const VosEstimator est = MakeEstimator();
  for (double beta : {0.0, 0.1, 0.3}) {
    double prev = -1.0;
    for (double n_delta = 0; n_delta <= GetParam(); n_delta += GetParam() / 16.0) {
      const double alpha = est.ExpectedAlpha(n_delta, beta);
      ASSERT_GT(alpha, prev) << "nΔ=" << n_delta << " beta=" << beta;
      ASSERT_LT(alpha, 0.5 + 1e-12);
      prev = alpha;
    }
  }
}

TEST_P(EstimatorPropertyTest, ExpectedAlphaIsMonotoneInBeta) {
  const VosEstimator est = MakeEstimator();
  for (double n_delta : {0.0, 10.0, GetParam() / 8.0}) {
    double prev = -1.0;
    for (double beta = 0.0; beta < 0.5; beta += 0.05) {
      const double alpha = est.ExpectedAlpha(n_delta, beta);
      ASSERT_GE(alpha, prev) << "nΔ=" << n_delta << " beta=" << beta;
      prev = alpha;
    }
  }
}

TEST_P(EstimatorPropertyTest, SymmetricDifferenceInvertsExpectedAlpha) {
  // n̂Δ(E[α](nΔ, β), β) == nΔ over a dense grid — the estimator is the
  // exact inverse of its own expectation model.
  const VosEstimator est = MakeEstimator();
  for (double beta : {0.0, 0.05, 0.2, 0.4}) {
    for (double frac : {0.0, 0.01, 0.05, 0.1, 0.25}) {
      const double n_delta = frac * GetParam();
      const double alpha = est.ExpectedAlpha(n_delta, beta);
      ASSERT_NEAR(est.EstimateSymmetricDifference(alpha, beta), n_delta,
                  1e-6 * std::max(1.0, n_delta))
          << "k=" << GetParam() << " beta=" << beta << " nΔ=" << n_delta;
    }
  }
}

TEST_P(EstimatorPropertyTest, EstimateIsMonotoneDecreasingInAlpha) {
  // More observed disagreement ⇒ fewer estimated common items (within the
  // meaningful α < ½ range).
  const VosEstimator est = MakeEstimator();
  const double beta = 0.05;
  double prev = 1e300;
  for (double alpha = 0.0; alpha < 0.45; alpha += 0.03) {
    const double s = est.EstimateCommonItems(1000, 1000, alpha, beta);
    ASSERT_LE(s, prev) << "alpha=" << alpha;
    prev = s;
  }
}

TEST_P(EstimatorPropertyTest, ConfidenceWidthBehaviourInK) {
  // Two regimes, both invariants of the variance model:
  //   β = 0: quantization only — a larger sketch is (weakly) tighter at
  //     the same true nΔ (the e^{4nΔ/k} inflation shrinks).
  //   β > 0 fixed: the contamination term ≈ 2kβ *grows* with k, so a
  //     larger virtual sketch against the same array fill is WIDER — the
  //     mechanism behind the λ-ablation's U-shape (EXPERIMENTS.md A1).
  const uint32_t k = GetParam();
  VosEstimator small(k);
  VosEstimator large(4 * k);
  const double n_items = k;
  const double n_delta = 0.1 * k;

  const auto clean_small = small.EstimateWithConfidence(
      n_items, n_items, small.ExpectedAlpha(n_delta, 0.0), 0.0);
  const auto clean_large = large.EstimateWithConfidence(
      n_items, n_items, large.ExpectedAlpha(n_delta, 0.0), 0.0);
  EXPECT_LT(clean_large.sigma, clean_small.sigma)
      << "at beta=0 more bits must mean a tighter band";

  const auto noisy_small = small.EstimateWithConfidence(
      n_items, n_items, small.ExpectedAlpha(n_delta, 0.05), 0.05);
  const auto noisy_large = large.EstimateWithConfidence(
      n_items, n_items, large.ExpectedAlpha(n_delta, 0.05), 0.05);
  EXPECT_GT(noisy_large.sigma, noisy_small.sigma)
      << "at fixed beta>0 the contamination term grows with k";
}

TEST_P(EstimatorPropertyTest, VarianceGrowsWithAlpha) {
  const VosEstimator est = MakeEstimator();
  double prev = -1.0;
  for (double alpha = 0.05; alpha < 0.5; alpha += 0.05) {
    const double var = est.DeltaMethodVariance(alpha);
    ASSERT_GT(var, prev) << "alpha=" << alpha;
    prev = var;
  }
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, EstimatorPropertyTest,
                         ::testing::Values(128, 1024, 6400, 65536));

}  // namespace
}  // namespace vos::core

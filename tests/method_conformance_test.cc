// Cross-method conformance suite: every SimilarityMethod the factory can
// build must satisfy the same behavioural contract. Parameterized over all
// registered method names, so adding a method to the factory automatically
// subjects it to this suite.

#include <gtest/gtest.h>

#include <memory>

#include "harness/method_factory.h"
#include "stream/dataset.h"

namespace vos::harness {
namespace {

using core::PairEstimate;
using core::SimilarityMethod;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

MethodFactoryConfig SmallFactory() {
  MethodFactoryConfig config;
  config.base_k = 64;
  config.num_users = 64;
  config.num_items = 100000;
  config.seed = 31;
  return config;
}

class MethodConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<SimilarityMethod> Make() {
    auto method = CreateMethod(GetParam(), SmallFactory());
    VOS_CHECK(method.ok()) << method.status().ToString();
    return *std::move(method);
  }
};

TEST_P(MethodConformanceTest, NameIsNonEmptyAndStable) {
  auto method = Make();
  EXPECT_FALSE(method->Name().empty());
  EXPECT_EQ(method->Name(), Make()->Name());
}

TEST_P(MethodConformanceTest, MemoryIsPositiveAndUpdateIndependent) {
  auto method = Make();
  const size_t before = method->MemoryBits();
  EXPECT_GT(before, 0u);
  for (ItemId i = 0; i < 500; ++i) {
    method->Update({static_cast<UserId>(i % 8), i, Action::kInsert});
  }
  EXPECT_EQ(method->MemoryBits(), before)
      << "sketches must be fixed-size (that is the point)";
}

TEST_P(MethodConformanceTest, EmptyUsersEstimateZero) {
  auto method = Make();
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(est.common, 0.0);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
}

TEST_P(MethodConformanceTest, IdenticalLargeSetsScoreHigh) {
  // RP is excluded: its per-slot match probability is s/(n_u·n_v) ≈ 0.25%
  // here, so a single instance legitimately estimates 0 (it is unbiased
  // only on average — covered by RandomPairingTest.EstimateIsUnbiased...).
  if (GetParam() == "RP") GTEST_SKIP() << "RP is high-variance by design";
  auto method = Make();
  for (ItemId i = 0; i < 400; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i, Action::kInsert});
  }
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_GT(est.jaccard, 0.8);
  EXPECT_GT(est.common, 256.0);
}

TEST_P(MethodConformanceTest, DisjointLargeSetsScoreLow) {
  auto method = Make();
  for (ItemId i = 0; i < 400; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, 50000 + i, Action::kInsert});
  }
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_LT(est.jaccard, 0.2);
  EXPECT_LT(est.common, 80.0);
}

TEST_P(MethodConformanceTest, EstimatesStayInFeasibleRange) {
  // Clamping is on by default: whatever the stream, common ∈ [0, min(n_u,
  // n_v)] and jaccard ∈ [0, 1].
  auto method = Make();
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  std::vector<uint32_t> cards(64, 0);
  for (const Element& e : stream->elements()) {
    if (e.user >= 64) continue;
    method->Update(e);
    if (e.action == Action::kInsert) ++cards[e.user];
    else --cards[e.user];
  }
  for (UserId u = 0; u < 8; ++u) {
    for (UserId v = u + 1; v < 8; ++v) {
      const PairEstimate est = method->EstimatePair(u, v);
      EXPECT_GE(est.common, 0.0);
      EXPECT_LE(est.common,
                std::min(cards[u], cards[v]) + 1e-9)
          << "pair (" << u << "," << v << ")";
      EXPECT_GE(est.jaccard, 0.0);
      EXPECT_LE(est.jaccard, 1.0);
    }
  }
}

TEST_P(MethodConformanceTest, FullChurnReturnsToZero) {
  // Insert a set, delete all of it: estimates must return to 0 (exactly
  // for parity sketches; via n_u = 0 and clamping for the others).
  auto method = Make();
  for (ItemId i = 0; i < 100; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i, Action::kInsert});
  }
  for (ItemId i = 0; i < 100; ++i) {
    method->Update({0, i, Action::kDelete});
    method->Update({1, i, Action::kDelete});
  }
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(est.common, 0.0);
}

TEST_P(MethodConformanceTest, PrepareQueryDoesNotChangeEstimates) {
  auto method = Make();
  for (ItemId i = 0; i < 300; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i < 150 ? i : i + 9000, Action::kInsert});
  }
  const PairEstimate plain = method->EstimatePair(0, 1);
  method->PrepareQuery({0, 1});
  const PairEstimate cached = method->EstimatePair(0, 1);
  method->InvalidateQueryCache();
  const PairEstimate invalidated = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(plain.common, cached.common);
  EXPECT_DOUBLE_EQ(plain.jaccard, cached.jaccard);
  EXPECT_DOUBLE_EQ(plain.common, invalidated.common);
}

TEST_P(MethodConformanceTest, DeterministicAcrossInstances) {
  auto a = Make();
  auto b = Make();
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  for (const Element& e : stream->elements()) {
    if (e.user >= 64) continue;
    a->Update(e);
    b->Update(e);
  }
  for (UserId u = 0; u < 6; ++u) {
    for (UserId v = u + 1; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(a->EstimatePair(u, v).common,
                       b->EstimatePair(u, v).common);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodConformanceTest,
                         ::testing::ValuesIn(AllMethods()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace vos::harness

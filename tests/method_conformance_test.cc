// Cross-method conformance suite: every SimilarityMethod the factory can
// build must satisfy the same behavioural contract. Parameterized over all
// registered method names — so adding a method to the factory
// automatically subjects it to this suite — plus a dedicated
// "VOS-sharded" configuration matrix (shards × ingest threads × planner
// mode), so the sharded engine honours the contract in every pipeline
// mode, not just the factory default.

#include <gtest/gtest.h>

#include <memory>

#include "harness/method_factory.h"
#include "stream/dataset.h"

namespace vos::harness {
namespace {

using core::PairEstimate;
using core::SimilarityMethod;
using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

MethodFactoryConfig SmallFactory() {
  MethodFactoryConfig config;
  config.base_k = 64;
  config.num_users = 64;
  config.num_items = 100000;
  config.seed = 31;
  return config;
}

/// One conformance case: a factory method name plus the factory knobs it
/// runs under (only "VOS-sharded" varies them).
struct MethodCase {
  std::string name;
  uint32_t vos_shards = 4;
  unsigned ingest_threads = 0;
  bool query_shards_local = false;
  std::string label;  ///< gtest-safe test-name suffix
};

std::vector<MethodCase> DefaultCases() {
  std::vector<MethodCase> cases;
  for (const std::string& name : AllMethods()) {
    MethodCase c;
    c.name = name;
    c.label = name;
    for (char& ch : c.label) {
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

/// The sharded contract matrix: shards ∈ {1, 4} × ingest_threads ∈ {0, 2},
/// plus the shard-local planner query tier on the fully sharded +
/// threaded configuration.
std::vector<MethodCase> ShardedMatrixCases() {
  std::vector<MethodCase> cases;
  for (const uint32_t shards : {1u, 4u}) {
    for (const unsigned threads : {0u, 2u}) {
      for (const bool planner : {false, true}) {
        MethodCase c;
        c.name = "VOS-sharded";
        c.vos_shards = shards;
        c.ingest_threads = threads;
        c.query_shards_local = planner;
        c.label = "VOS_sharded_s" + std::to_string(shards) + "_t" +
                  std::to_string(threads) + (planner ? "_planner" : "");
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

class MethodConformanceTest : public ::testing::TestWithParam<MethodCase> {
 protected:
  std::unique_ptr<SimilarityMethod> Make() {
    MethodFactoryConfig config = SmallFactory();
    config.vos_shards = GetParam().vos_shards;
    config.ingest_threads = GetParam().ingest_threads;
    config.query_shards_local = GetParam().query_shards_local;
    auto method = CreateMethod(GetParam().name, config);
    VOS_CHECK(method.ok()) << method.status().ToString();
    return *std::move(method);
  }
};

TEST_P(MethodConformanceTest, NameIsNonEmptyAndStable) {
  auto method = Make();
  EXPECT_FALSE(method->Name().empty());
  EXPECT_EQ(method->Name(), Make()->Name());
}

TEST_P(MethodConformanceTest, MemoryIsPositiveAndUpdateIndependent) {
  auto method = Make();
  const size_t before = method->MemoryBits();
  EXPECT_GT(before, 0u);
  for (ItemId i = 0; i < 500; ++i) {
    method->Update({static_cast<UserId>(i % 8), i, Action::kInsert});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  EXPECT_EQ(method->MemoryBits(), before)
      << "sketches must be fixed-size (that is the point)";
}

TEST_P(MethodConformanceTest, EmptyUsersEstimateZero) {
  auto method = Make();
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(est.common, 0.0);
  EXPECT_DOUBLE_EQ(est.jaccard, 0.0);
}

TEST_P(MethodConformanceTest, IdenticalLargeSetsScoreHigh) {
  // RP is excluded: its per-slot match probability is s/(n_u·n_v) ≈ 0.25%
  // here, so a single instance legitimately estimates 0 (it is unbiased
  // only on average — covered by RandomPairingTest.EstimateIsUnbiased...).
  if (GetParam().name == "RP") GTEST_SKIP() << "RP is high-variance by design";
  auto method = Make();
  for (ItemId i = 0; i < 400; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i, Action::kInsert});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_GT(est.jaccard, 0.8);
  EXPECT_GT(est.common, 256.0);
}

TEST_P(MethodConformanceTest, DisjointLargeSetsScoreLow) {
  auto method = Make();
  for (ItemId i = 0; i < 400; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, 50000 + i, Action::kInsert});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_LT(est.jaccard, 0.2);
  EXPECT_LT(est.common, 80.0);
}

TEST_P(MethodConformanceTest, EstimatesStayInFeasibleRange) {
  // Clamping is on by default: whatever the stream, common ∈ [0, min(n_u,
  // n_v)] and jaccard ∈ [0, 1].
  auto method = Make();
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  std::vector<uint32_t> cards(64, 0);
  for (const Element& e : stream->elements()) {
    if (e.user >= 64) continue;
    method->Update(e);
    if (e.action == Action::kInsert) ++cards[e.user];
    else --cards[e.user];
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  for (UserId u = 0; u < 8; ++u) {
    for (UserId v = u + 1; v < 8; ++v) {
      const PairEstimate est = method->EstimatePair(u, v);
      EXPECT_GE(est.common, 0.0);
      EXPECT_LE(est.common,
                std::min(cards[u], cards[v]) + 1e-9)
          << "pair (" << u << "," << v << ")";
      EXPECT_GE(est.jaccard, 0.0);
      EXPECT_LE(est.jaccard, 1.0);
    }
  }
}

TEST_P(MethodConformanceTest, FullChurnReturnsToZero) {
  // Insert a set, delete all of it: estimates must return to 0 (exactly
  // for parity sketches; via n_u = 0 and clamping for the others).
  auto method = Make();
  for (ItemId i = 0; i < 100; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i, Action::kInsert});
  }
  for (ItemId i = 0; i < 100; ++i) {
    method->Update({0, i, Action::kDelete});
    method->Update({1, i, Action::kDelete});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(est.common, 0.0);
}

TEST_P(MethodConformanceTest, PrepareQueryDoesNotChangeEstimates) {
  auto method = Make();
  for (ItemId i = 0; i < 300; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i < 150 ? i : i + 9000, Action::kInsert});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  const PairEstimate plain = method->EstimatePair(0, 1);
  method->PrepareQuery({0, 1});
  const PairEstimate cached = method->EstimatePair(0, 1);
  method->InvalidateQueryCache();
  const PairEstimate invalidated = method->EstimatePair(0, 1);
  EXPECT_DOUBLE_EQ(plain.common, cached.common);
  EXPECT_DOUBLE_EQ(plain.jaccard, cached.jaccard);
  EXPECT_DOUBLE_EQ(plain.common, invalidated.common);
}

TEST_P(MethodConformanceTest, DeterministicAcrossInstances) {
  auto a = Make();
  auto b = Make();
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  for (const Element& e : stream->elements()) {
    if (e.user >= 64) continue;
    a->Update(e);
    b->Update(e);
  }
  ASSERT_TRUE(a->FlushIngest().ok());
  ASSERT_TRUE(b->FlushIngest().ok());
  for (UserId u = 0; u < 6; ++u) {
    for (UserId v = u + 1; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(a->EstimatePair(u, v).common,
                       b->EstimatePair(u, v).common);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodConformanceTest,
                         ::testing::ValuesIn(DefaultCases()),
                         [](const auto& info) { return info.param.label; });

INSTANTIATE_TEST_SUITE_P(ShardedMatrix, MethodConformanceTest,
                         ::testing::ValuesIn(ShardedMatrixCases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace vos::harness

// Bit-identity sweep of the runtime-dispatched kernel tier
// (common/kernels.h): every dispatch level this build + CPU offers must
// produce EXACTLY the scalar reference's outputs for every kernel, on
// random and adversarial inputs — tail lengths 0–7 words, odd strides,
// unaligned row bases, all-zero and all-one rows, k values that are not
// lane- or word-multiples, m both below and above 2^32, band geometries
// that end flush against the last packed word. Dispatch must never
// change results, only throughput; this test is the contract the rest of
// the system's bit-identity suites stand on, and it runs under the ASan
// and TSAN CI jobs (unaligned loads and the concurrent-resolution smoke
// below are exactly what those catch).

#include "common/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/kernels_internal.h"
#include "common/random.h"

namespace vos::kernels {
namespace {

/// All tables this build + CPU can run (always at least scalar).
std::vector<const KernelTable*> AllTables() {
  std::vector<const KernelTable*> tables;
  for (const DispatchLevel level : AvailableLevels()) {
    tables.push_back(TableFor(level));
  }
  return tables;
}

/// Words with every adversarial fill pattern the popcount kernels care
/// about, at `misalign` extra leading words so callers can take a base
/// pointer inside the buffer (unaligned relative to vector width).
std::vector<uint64_t> FillWords(size_t n, uint64_t pattern_seed) {
  Rng rng(pattern_seed);
  std::vector<uint64_t> words(n);
  switch (pattern_seed % 4) {
    case 0:
      for (auto& w : words) w = rng.NextU64();
      break;
    case 1:
      for (auto& w : words) w = 0;
      break;
    case 2:
      for (auto& w : words) w = ~uint64_t{0};
      break;
    default:
      // Sparse rows: a few set bits, the regime digest rows live in.
      for (auto& w : words) w = uint64_t{1} << (rng.NextU64() % 64);
      break;
  }
  return words;
}

TEST(KernelDispatchTest, ReportsAtLeastScalarAndActiveIsAvailable) {
  const std::vector<DispatchLevel> levels = AvailableLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), DispatchLevel::kScalar);
  ASSERT_NE(TableFor(DispatchLevel::kScalar), nullptr);
  // The active table must be one of the available ones.
  bool found = false;
  for (const DispatchLevel level : levels) {
    if (level == Active().level) found = true;
  }
  EXPECT_TRUE(found) << "active level " << LevelName(Active().level)
                     << " not in AvailableLevels()";
}

TEST(KernelDispatchTest, LevelNamesRoundTrip) {
  for (const DispatchLevel level :
       {DispatchLevel::kScalar, DispatchLevel::kNeon, DispatchLevel::kAvx2,
        DispatchLevel::kAvx512}) {
    DispatchLevel parsed;
    ASSERT_TRUE(ParseDispatchLevel(LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  DispatchLevel parsed;
  EXPECT_FALSE(ParseDispatchLevel("sse9", &parsed));
  EXPECT_FALSE(ParseDispatchLevel("", &parsed));
}

TEST(KernelDispatchTest, SetDispatchLevelForcesAndRejects) {
  const DispatchLevel original = Active().level;
  for (const DispatchLevel level : AvailableLevels()) {
    ASSERT_TRUE(SetDispatchLevel(level));
    EXPECT_EQ(Active().level, level);
  }
  ASSERT_TRUE(SetDispatchLevel(original));
#if !defined(__aarch64__)
  EXPECT_FALSE(SetDispatchLevel(DispatchLevel::kNeon));
#endif
}

// Hamming kernels: sweep sizes crossing every internal block boundary
// (the AVX2 Harley–Seal block is 64 words, vectors are 4/8 words), all
// fill patterns, and misaligned bases.
TEST(KernelDispatchTest, XorPopcountMatchesScalarAcrossSizesAndAlignment) {
  const KernelTable* scalar = TableFor(DispatchLevel::kScalar);
  for (const KernelTable* table : AllTables()) {
    for (const size_t misalign : {0, 1, 3}) {
      for (size_t n : {0,  1,  2,  3,  4,  5,  6,  7,  8,  15, 16, 17,
                       31, 63, 64, 65, 71, 100, 127, 128, 129, 200}) {
        for (uint64_t pattern = 0; pattern < 4; ++pattern) {
          const std::vector<uint64_t> a =
              FillWords(n + misalign, pattern * 7 + n);
          const std::vector<uint64_t> b =
              FillWords(n + misalign, pattern * 13 + n + 1);
          const uint64_t* a_base = a.data() + misalign;
          const uint64_t* b_base = b.data() + misalign;
          EXPECT_EQ(table->xor_popcount(a_base, b_base, n),
                    scalar->xor_popcount(a_base, b_base, n))
              << table->name << " n=" << n << " misalign=" << misalign
              << " pattern=" << pattern;
          EXPECT_EQ(table->popcount_words(a_base, n),
                    scalar->popcount_words(a_base, n))
              << table->name << " n=" << n << " misalign=" << misalign
              << " pattern=" << pattern;
        }
      }
    }
  }
}

// The register-blocked variants add a stride dimension: odd strides
// (stride > n, stride = n + 1, huge stride) must index identically.
TEST(KernelDispatchTest, BlockedXorPopcountsMatchScalarAtOddStrides) {
  const KernelTable* scalar = TableFor(DispatchLevel::kScalar);
  Rng rng(42);
  for (const KernelTable* table : AllTables()) {
    for (size_t n : {1, 3, 4, 5, 7, 8, 9, 16, 33, 100}) {
      for (const size_t stride : {n, n + 1, 2 * n + 3, n + 17}) {
        const std::vector<uint64_t> a = FillWords(n, rng.NextU64());
        const std::vector<uint64_t> a1 = FillWords(n, rng.NextU64());
        const std::vector<uint64_t> b = FillWords(7 * stride + n, 0);
        size_t got[8], want[8];
        table->xor_popcount8(a.data(), b.data(), stride, n, got);
        scalar->xor_popcount8(a.data(), b.data(), stride, n, want);
        for (int t = 0; t < 8; ++t) {
          EXPECT_EQ(got[t], want[t]) << table->name << " xor8 n=" << n
                                     << " stride=" << stride << " t=" << t;
        }
        table->xor_popcount2x4(a.data(), a1.data(), b.data(), stride, n, got);
        scalar->xor_popcount2x4(a.data(), a1.data(), b.data(), stride, n,
                                want);
        for (int t = 0; t < 8; ++t) {
          EXPECT_EQ(got[t], want[t]) << table->name << " xor2x4 n=" << n
                                     << " stride=" << stride << " t=" << t;
        }
      }
    }
  }
}

// Extraction: k values that are not multiples of 4, 8 or 64 (ragged
// lanes AND ragged words), m below and above 2^32 (the MulHi64 reduction
// must be exact past 32 bits), cells capture on and off.
TEST(KernelDispatchTest, ExtractBitsMatchesScalarForRaggedKAndLargeM) {
  const KernelTable* scalar = TableFor(DispatchLevel::kScalar);
  Rng rng(7);
  for (const KernelTable* table : AllTables()) {
    for (const uint64_t m :
         {uint64_t{64}, uint64_t{1000}, uint64_t{1} << 20,
          (uint64_t{1} << 21) - 3}) {
      const std::vector<uint64_t> array = FillWords((m + 63) / 64, 0);
      for (const uint32_t k : {1u, 3u, 7u, 8u, 63u, 64u, 65u, 127u, 200u}) {
        std::vector<uint64_t> seeds(k);
        for (auto& s : seeds) s = rng.NextU64();
        const uint64_t user = rng.NextU64() % 100000;
        const size_t words = (k + 63) / 64;
        std::vector<uint64_t> got(words, 0xdead), want(words, 0xbeef);
        std::vector<uint32_t> got_cells(k, 1), want_cells(k, 2);
        table->extract_bits(array.data(), seeds.data(), k, user, m,
                            got.data(), got_cells.data());
        scalar->extract_bits(array.data(), seeds.data(), k, user, m,
                             want.data(), want_cells.data());
        EXPECT_EQ(got, want) << table->name << " k=" << k << " m=" << m;
        EXPECT_EQ(got_cells, want_cells)
            << table->name << " k=" << k << " m=" << m;
        // Without cell capture the digest must be unchanged.
        std::vector<uint64_t> got_nc(words, 0);
        table->extract_bits(array.data(), seeds.data(), k, user, m,
                            got_nc.data(), nullptr);
        EXPECT_EQ(got_nc, want) << table->name << " k=" << k << " m=" << m;
        // Re-extraction from the captured cells round-trips.
        std::vector<uint64_t> got_cells_path(words, 0);
        table->extract_bits_from_cells(array.data(), want_cells.data(), k,
                                       got_cells_path.data());
        EXPECT_EQ(got_cells_path, want)
            << table->name << " k=" << k << " m=" << m;
      }
    }
  }
}

// Routing: shard assignment and the local_of gather, ragged batch sizes,
// shard counts that are not powers of two, locals on and off.
TEST(KernelDispatchTest, RouteBatchMatchesScalarAcrossShardCountsAndTails) {
  const KernelTable* scalar = TableFor(DispatchLevel::kScalar);
  Rng rng(3);
  const uint32_t num_users = 5000;
  std::vector<uint32_t> local_of(num_users);
  for (auto& l : local_of) l = rng.NextU64();
  for (const KernelTable* table : AllTables()) {
    for (const uint32_t shards : {1u, 2u, 3u, 7u, 16u, 255u, 65535u}) {
      for (const size_t n : {0, 1, 5, 7, 8, 9, 16, 100, 257}) {
        std::vector<uint32_t> users(n);
        for (auto& u : users) u = rng.NextU64() % num_users;
        const uint64_t seed_mix =
            rng.NextU64() * 0x9e3779b97f4a7c15ULL;
        std::vector<uint16_t> got_shards(n + 1, 0xaaaa);
        std::vector<uint16_t> want_shards(n + 1, 0xbbbb);
        std::vector<uint32_t> got_locals(n + 1, 1);
        std::vector<uint32_t> want_locals(n + 1, 2);
        table->route_batch(users.data(), n, seed_mix, shards, local_of.data(),
                           got_shards.data(), got_locals.data());
        scalar->route_batch(users.data(), n, seed_mix, shards,
                            local_of.data(), want_shards.data(),
                            want_locals.data());
        EXPECT_EQ(std::vector<uint16_t>(got_shards.begin(),
                                        got_shards.begin() + n),
                  std::vector<uint16_t>(want_shards.begin(),
                                        want_shards.begin() + n))
            << table->name << " shards=" << shards << " n=" << n;
        EXPECT_EQ(std::vector<uint32_t>(got_locals.begin(),
                                        got_locals.begin() + n),
                  std::vector<uint32_t>(want_locals.begin(),
                                        want_locals.begin() + n))
            << table->name << " shards=" << shards << " n=" << n;
        // No writes past n.
        EXPECT_EQ(got_shards[n], 0xaaaa) << table->name;
        EXPECT_EQ(got_locals[n], 1u) << table->name;
        // locals == nullptr leaves shard tags identical.
        std::vector<uint16_t> got_tags(n, 0);
        table->route_batch(users.data(), n, seed_mix, shards, nullptr,
                           got_tags.data(), nullptr);
        EXPECT_EQ(got_tags, std::vector<uint16_t>(want_shards.begin(),
                                                  want_shards.begin() + n))
            << table->name << " shards=" << shards << " n=" << n;
      }
    }
  }
}

// Band keys: geometries whose last band ends flush against the last
// packed word (the spill-gather clamp path), rows_per_band 1 and 64
// (mask edge cases), and band counts that are not lane multiples.
TEST(KernelDispatchTest, BandKeysMatchScalarIncludingFlushLastWord) {
  const KernelTable* scalar = TableFor(DispatchLevel::kScalar);
  Rng rng(9);
  for (const KernelTable* table : AllTables()) {
    for (const uint32_t rpb : {1u, 3u, 5u, 8u, 13u, 31u, 32u, 63u, 64u}) {
      for (const size_t words : {1, 2, 3, 7, 25, 100}) {
        // Max bands the contract allows, plus smaller ragged counts.
        const uint32_t max_bands = static_cast<uint32_t>(words * 64 / rpb);
        for (uint32_t bands :
             {uint32_t{1}, max_bands / 2 + 1, max_bands}) {
          if (bands == 0 || bands > max_bands) continue;
          for (uint64_t pattern = 0; pattern < 4; ++pattern) {
            const std::vector<uint64_t> row =
                FillWords(words, pattern * 3 + words);
            std::vector<uint64_t> got(bands, 1), want(bands, 2);
            table->band_keys(row.data(), words, bands, rpb, got.data());
            scalar->band_keys(row.data(), words, bands, rpb, want.data());
            EXPECT_EQ(got, want)
                << table->name << " rpb=" << rpb << " words=" << words
                << " bands=" << bands << " pattern=" << pattern;
          }
        }
      }
    }
  }
}

// Concurrent Active() + SetDispatchLevel: the table pointer is atomic,
// so readers must always see a fully valid table (TSAN checks the
// publication; the asserts check the values).
TEST(KernelDispatchTest, ConcurrentActiveAndSetDispatchLevelIsSafe) {
  const DispatchLevel original = Active().level;
  const std::vector<DispatchLevel> levels = AvailableLevels();
  std::vector<std::thread> readers;
  std::vector<uint64_t> a(16, 0x0f0f0f0f0f0f0f0fULL);
  std::vector<uint64_t> b(16, 0x00ff00ff00ff00ffULL);
  const size_t want = TableFor(DispatchLevel::kScalar)
                          ->xor_popcount(a.data(), b.data(), a.size());
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 2000; ++iter) {
        const KernelTable& table = Active();
        ASSERT_NE(table.name, nullptr);
        ASSERT_EQ(table.xor_popcount(a.data(), b.data(), a.size()), want);
      }
    });
  }
  std::thread flipper([&] {
    for (int iter = 0; iter < 500; ++iter) {
      for (const DispatchLevel level : levels) {
        ASSERT_TRUE(SetDispatchLevel(level));
      }
    }
  });
  for (auto& r : readers) r.join();
  flipper.join();
  ASSERT_TRUE(SetDispatchLevel(original));
}

}  // namespace
}  // namespace vos::kernels

// Unit tests for the weighted-similarity module: WeightedSet, exact
// generalized Jaccard, and the ICWS sketch (Ioffe ICDM'10 — reference [10]
// of the paper).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "weighted/icws.h"
#include "weighted/weighted_set.h"

namespace vos::weighted {
namespace {

// -------------------------------------------------------------- WeightedSet

TEST(WeightedSetTest, SetAddRemoveSemantics) {
  WeightedSet set;
  EXPECT_TRUE(set.empty());
  set.Set(1, 2.5);
  set.Add(1, 0.5);
  EXPECT_DOUBLE_EQ(set.Weight(1), 3.0);
  EXPECT_DOUBLE_EQ(set.Weight(2), 0.0);
  set.Add(1, -5.0);  // clamps to 0 → removed
  EXPECT_TRUE(set.empty());
  set.Set(3, 1.0);
  set.Set(3, 0.0);  // explicit zero removes
  EXPECT_EQ(set.size(), 0u);
}

TEST(WeightedSetTest, TotalWeight) {
  WeightedSet set;
  set.Set(1, 1.5);
  set.Set(2, 2.5);
  EXPECT_DOUBLE_EQ(set.TotalWeight(), 4.0);
}

TEST(GeneralizedJaccardTest, HandComputedCases) {
  WeightedSet x, y;
  x.Set(1, 2.0);
  x.Set(2, 1.0);
  y.Set(1, 1.0);
  y.Set(3, 1.0);
  // min: item1 → 1; max: item1 → 2, item2 → 1, item3 → 1. J = 1/4.
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, y), 0.25);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(y, x), 0.25);  // symmetric
}

TEST(GeneralizedJaccardTest, IdentityDisjointEmpty) {
  WeightedSet x, y, empty;
  x.Set(1, 3.0);
  x.Set(2, 0.5);
  y.Set(9, 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, x), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, y), 0.0);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, empty), 0.0);
}

TEST(GeneralizedJaccardTest, ReducesToSetJaccardForUnitWeights) {
  WeightedSet x, y;
  for (ItemId i = 0; i < 8; ++i) x.Set(i, 1.0);
  for (ItemId i = 4; i < 12; ++i) y.Set(i, 1.0);
  // |∩| = 4, |∪| = 12.
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, y), 4.0 / 12.0);
}

TEST(GeneralizedJaccardTest, ScaleChangesSimilarityAsExpected) {
  // Doubling one vector's weights: J(x, 2x) = Σx/Σ2x = 1/2.
  WeightedSet x, x2;
  for (ItemId i = 0; i < 5; ++i) {
    x.Set(i, 1.0 + i);
    x2.Set(i, 2.0 * (1.0 + i));
  }
  EXPECT_DOUBLE_EQ(GeneralizedJaccard(x, x2), 0.5);
}

// ------------------------------------------------------------------- ICWS

TEST(IcwsTest, IdenticalVectorsAlwaysMatch) {
  WeightedSet x;
  for (ItemId i = 0; i < 30; ++i) x.Set(i, 0.1 + i * 0.7);
  IcwsSketch a(x, 128, 5);
  IcwsSketch b(x, 128, 5);
  EXPECT_DOUBLE_EQ(IcwsSketch::EstimateJaccard(a, b), 1.0);
}

TEST(IcwsTest, DisjointVectorsNeverMatch) {
  WeightedSet x, y;
  for (ItemId i = 0; i < 20; ++i) x.Set(i, 1.0 + i);
  for (ItemId i = 100; i < 120; ++i) y.Set(i, 1.0 + i);
  IcwsSketch a(x, 128, 7);
  IcwsSketch b(y, 128, 7);
  EXPECT_DOUBLE_EQ(IcwsSketch::EstimateJaccard(a, b), 0.0);
}

TEST(IcwsTest, ConsistencyAcrossIndependentBuilds) {
  // "Consistent" sampling: the sketch is a pure function of (vector, k,
  // seed) — rebuilding yields identical samples.
  WeightedSet x;
  Rng rng(9);
  for (ItemId i = 0; i < 50; ++i) x.Set(i, 0.01 + rng.NextDouble() * 5);
  IcwsSketch a(x, 64, 11);
  IcwsSketch b(x, 64, 11);
  for (uint32_t j = 0; j < 64; ++j) {
    EXPECT_TRUE(a.sample(j).Matches(b.sample(j))) << "slot " << j;
  }
}

TEST(IcwsTest, EmptyVectorLeavesSlotsUnoccupied) {
  WeightedSet empty;
  IcwsSketch sketch(empty, 16, 3);
  for (uint32_t j = 0; j < 16; ++j) {
    EXPECT_FALSE(sketch.sample(j).occupied);
  }
  IcwsSketch other(empty, 16, 3);
  EXPECT_DOUBLE_EQ(IcwsSketch::EstimateJaccard(sketch, other), 0.0);
}

TEST(IcwsTest, MemoryModel) {
  WeightedSet x;
  x.Set(1, 1.0);
  IcwsSketch sketch(x, 100, 3);
  EXPECT_EQ(sketch.MemoryBits(), 100u * 40u);
}

/// The core guarantee: P(sample match) = generalized Jaccard, across weight
/// profiles (property sweep over structurally different vector pairs).
struct IcwsAccuracyCase {
  const char* name;
  double overlap_weight;  // weight of shared items in y
};

class IcwsAccuracyTest : public ::testing::TestWithParam<IcwsAccuracyCase> {};

TEST_P(IcwsAccuracyTest, MatchRateEstimatesGeneralizedJaccard) {
  // x: items 0..39 with increasing weights; y: shares items 0..19 at
  // parameterized weight, plus its own items 200..219.
  WeightedSet x, y;
  for (ItemId i = 0; i < 40; ++i) x.Set(i, 0.5 + 0.25 * i);
  for (ItemId i = 0; i < 20; ++i) y.Set(i, GetParam().overlap_weight);
  for (ItemId i = 200; i < 220; ++i) y.Set(i, 1.0);

  const double exact = GeneralizedJaccard(x, y);
  constexpr uint32_t kSlots = 1024;
  IcwsSketch a(x, kSlots, 17);
  IcwsSketch b(y, kSlots, 17);
  const double estimate = IcwsSketch::EstimateJaccard(a, b);
  // Binomial sd = sqrt(J(1-J)/k) ≤ 0.016; allow 4 sigma.
  EXPECT_NEAR(estimate, exact, 4 * std::sqrt(exact * (1 - exact) / kSlots) +
                                   0.01)
      << GetParam().name << " exact=" << exact;
}

INSTANTIATE_TEST_SUITE_P(
    WeightProfiles, IcwsAccuracyTest,
    ::testing::Values(IcwsAccuracyCase{"light_overlap", 0.25},
                      IcwsAccuracyCase{"matched_weights", 1.0},
                      IcwsAccuracyCase{"heavy_overlap", 4.0},
                      IcwsAccuracyCase{"dominant_overlap", 20.0}),
    [](const auto& info) { return info.param.name; });

TEST(IcwsTest, UnitWeightsAgreeWithSetJaccard) {
  // With 0/1 weights the generalized Jaccard is the set Jaccard; ICWS must
  // land on it too.
  WeightedSet x, y;
  for (ItemId i = 0; i < 60; ++i) x.Set(i, 1.0);
  for (ItemId i = 30; i < 90; ++i) y.Set(i, 1.0);
  const double exact = 30.0 / 90.0;
  IcwsSketch a(x, 2048, 23);
  IcwsSketch b(y, 2048, 23);
  EXPECT_NEAR(IcwsSketch::EstimateJaccard(a, b), exact, 0.05);
}

}  // namespace
}  // namespace vos::weighted

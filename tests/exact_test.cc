// Unit tests for src/exact: the exact store, top-user and pair selection,
// and batch ground-truth computation (cross-checked against per-pair
// brute force).

#include <gtest/gtest.h>

#include <algorithm>

#include "exact/exact_store.h"
#include "exact/ground_truth.h"
#include "exact/pair_selection.h"
#include "stream/dataset.h"

namespace vos::exact {
namespace {

using stream::Action;

// -------------------------------------------------------------- ExactStore

TEST(ExactStoreTest, UpdateMaintainsSetsAndCounters) {
  ExactStore store(5);
  store.Update({1, 10, Action::kInsert});
  store.Update({1, 11, Action::kInsert});
  store.Update({2, 10, Action::kInsert});
  EXPECT_EQ(store.Cardinality(1), 2u);
  EXPECT_EQ(store.Cardinality(2), 1u);
  EXPECT_EQ(store.Cardinality(0), 0u);
  EXPECT_EQ(store.TotalEdges(), 3u);

  store.Update({1, 10, Action::kDelete});
  EXPECT_EQ(store.Cardinality(1), 1u);
  EXPECT_EQ(store.TotalEdges(), 2u);
  EXPECT_TRUE(store.Items(1).count(11));
  EXPECT_FALSE(store.Items(1).count(10));
}

TEST(ExactStoreTest, CommonItemsAndJaccard) {
  ExactStore store(3);
  for (stream::ItemId i : {1, 2, 3, 4}) store.Update({0, i, Action::kInsert});
  for (stream::ItemId i : {3, 4, 5, 6}) store.Update({1, i, Action::kInsert});
  EXPECT_EQ(store.CommonItems(0, 1), 2u);
  EXPECT_DOUBLE_EQ(store.Jaccard(0, 1), 2.0 / 6.0);
  EXPECT_EQ(store.SymmetricDifference(0, 1), 4u);
  // Empty-vs-empty.
  EXPECT_EQ(store.CommonItems(2, 2), 0u);
  EXPECT_DOUBLE_EQ(store.Jaccard(0, 2), 0.0);
}

TEST(ExactStoreTest, JaccardOfIdenticalSetsIsOne) {
  ExactStore store(2);
  for (stream::ItemId i : {7, 8, 9}) {
    store.Update({0, i, Action::kInsert});
    store.Update({1, i, Action::kInsert});
  }
  EXPECT_DOUBLE_EQ(store.Jaccard(0, 1), 1.0);
  EXPECT_EQ(store.SymmetricDifference(0, 1), 0u);
}

// ---------------------------------------------------- TopCardinalityUsers

TEST(PairSelectionTest, TopUsersOrderedByCardinality) {
  ExactStore store(6);
  // user 0: 1 item, user 1: 3 items, user 2: 2 items, user 5: 3 items.
  store.Update({0, 1, Action::kInsert});
  for (stream::ItemId i : {1, 2, 3}) store.Update({1, i, Action::kInsert});
  for (stream::ItemId i : {1, 2}) store.Update({2, i, Action::kInsert});
  for (stream::ItemId i : {4, 5, 6}) store.Update({5, i, Action::kInsert});

  const auto top2 = TopCardinalityUsers(store, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);  // tie (1 vs 5) broken by smaller id
  EXPECT_EQ(top2[1], 5u);

  const auto all = TopCardinalityUsers(store, 100);
  EXPECT_EQ(all.size(), 4u);  // users with empty sets excluded
}

TEST(PairSelectionTest, PairsRequireCommonItem) {
  ExactStore store(4);
  for (stream::ItemId i : {1, 2}) store.Update({0, i, Action::kInsert});
  for (stream::ItemId i : {2, 3}) store.Update({1, i, Action::kInsert});
  for (stream::ItemId i : {7, 8}) store.Update({2, i, Action::kInsert});

  const auto pairs =
      PairsWithCommonItems(store, {0, 1, 2}, /*max_pairs=*/0, /*seed=*/1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].u, 0u);
  EXPECT_EQ(pairs[0].v, 1u);
}

TEST(PairSelectionTest, MaxPairsSubsamplesDeterministically) {
  ExactStore store(20);
  // All users share item 0: all C(20,2)=190 pairs qualify.
  for (stream::UserId u = 0; u < 20; ++u) {
    store.Update({u, 0, Action::kInsert});
  }
  std::vector<stream::UserId> users;
  for (stream::UserId u = 0; u < 20; ++u) users.push_back(u);

  const auto all = PairsWithCommonItems(store, users, 0, 1);
  EXPECT_EQ(all.size(), 190u);
  const auto capped_a = PairsWithCommonItems(store, users, 50, 1);
  const auto capped_b = PairsWithCommonItems(store, users, 50, 1);
  ASSERT_EQ(capped_a.size(), 50u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(capped_a[i], capped_b[i]);
  const auto capped_c = PairsWithCommonItems(store, users, 50, 2);
  bool any_diff = false;
  for (size_t i = 0; i < 50; ++i) any_diff |= !(capped_a[i] == capped_c[i]);
  EXPECT_TRUE(any_diff);  // different seed, different subsample
}

// ------------------------------------------------------ ComputePairTruths

TEST(GroundTruthTest, MatchesPerPairBruteForce) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ExactStore store(stream->num_users());
  for (const stream::Element& e : stream->elements()) store.Update(e);

  const auto users = TopCardinalityUsers(store, 12);
  const auto pairs = PairsWithCommonItems(store, users, 0, 3);
  ASSERT_FALSE(pairs.empty());

  const auto truths = ComputePairTruths(store, pairs);
  ASSERT_EQ(truths.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(truths[i].common, store.CommonItems(pairs[i].u, pairs[i].v));
    EXPECT_EQ(truths[i].card_u, store.Cardinality(pairs[i].u));
    EXPECT_EQ(truths[i].card_v, store.Cardinality(pairs[i].v));
    EXPECT_DOUBLE_EQ(truths[i].Jaccard(),
                     store.Jaccard(pairs[i].u, pairs[i].v));
    EXPECT_EQ(truths[i].SymmetricDifference(),
              store.SymmetricDifference(pairs[i].u, pairs[i].v));
  }
}

TEST(GroundTruthTest, PairTruthDerivedQuantities) {
  PairTruth t;
  t.common = 3;
  t.card_u = 5;
  t.card_v = 4;
  EXPECT_EQ(t.Union(), 6u);
  EXPECT_DOUBLE_EQ(t.Jaccard(), 0.5);
  EXPECT_EQ(t.SymmetricDifference(), 3u);
  PairTruth empty;
  EXPECT_DOUBLE_EQ(empty.Jaccard(), 0.0);
}

TEST(GroundTruthTest, TruthsTrackDeletions) {
  ExactStore store(2);
  for (stream::ItemId i : {1, 2, 3}) {
    store.Update({0, i, Action::kInsert});
    store.Update({1, i, Action::kInsert});
  }
  const std::vector<UserPair> pairs = {{0, 1}};
  EXPECT_EQ(ComputePairTruths(store, pairs)[0].common, 3u);
  store.Update({0, 2, Action::kDelete});
  const auto after = ComputePairTruths(store, pairs);
  EXPECT_EQ(after[0].common, 2u);
  EXPECT_EQ(after[0].card_u, 2u);
  EXPECT_EQ(after[0].card_v, 3u);
}

}  // namespace
}  // namespace vos::exact

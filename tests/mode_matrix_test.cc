// Parameter-matrix property tests: digest width b for b-bit minwise, the
// exact-permutation (Feistel) mode across the min-wise baselines, and the
// "VOS-sharded" pipeline matrix (shards × ingest threads).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "baselines/bbit_minwise.h"
#include "baselines/minhash.h"
#include "baselines/oph.h"
#include "harness/method_factory.h"
#include "stream/dataset.h"

namespace vos::baseline {
namespace {

using stream::Action;
using stream::ItemId;

constexpr uint64_t kItems = 100000;

/// b-bit sweep: the collision-corrected estimator must stay centred on the
/// true J for every digest width (variance grows as b shrinks).
class BbitWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BbitWidthTest, CorrectionCentersEstimate) {
  const uint32_t b = GetParam();
  // Average over several seeds: the correction must remove the 2^-b
  // collision inflation at every width.
  double total = 0.0;
  constexpr int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    BbitMinwiseConfig config;
    config.k = 600;
    config.b = b;
    config.seed = 1000 + run;
    BbitMinwise method(config, 2, kItems);
    for (ItemId i = 0; i < 200; ++i) {
      method.Update({0, i, Action::kInsert});
      method.Update({1, i + 100, Action::kInsert});  // 100 of 300 shared
    }
    total += method.EstimatePair(0, 1).jaccard;
  }
  const double true_j = 100.0 / 300.0;
  // sd per run ≈ sqrt(J(1-J)/k)/(1-2^-b); the mean of 12 runs is tight.
  const double tolerance = b == 1 ? 0.06 : 0.04;
  EXPECT_NEAR(total / kRuns, true_j, tolerance) << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Widths, BbitWidthTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

/// Exact-permutation mode must agree statistically with mixer mode.
class FeistelModeTest : public ::testing::TestWithParam<HashMode> {};

TEST_P(FeistelModeTest, OphAccuracyHolds) {
  OphConfig config;
  config.k = 512;
  config.hash_mode = GetParam();
  config.seed = 21;
  // Feistel permutations need the real (smaller) item domain.
  const uint64_t domain = GetParam() == HashMode::kFeistel ? 4096 : kItems;
  Oph method(config, 2, domain);
  for (ItemId i = 0; i < 300; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i + 150, Action::kInsert});  // 150 of 450 shared
  }
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 150.0 / 450.0, 0.09);
}

TEST_P(FeistelModeTest, MinHashDeletionSemanticsIndependentOfMode) {
  MinHashConfig config;
  config.k = 64;
  config.hash_mode = GetParam();
  const uint64_t domain = GetParam() == HashMode::kFeistel ? 1024 : kItems;
  MinHash method(config, 1, domain);
  method.Update({0, 5, Action::kInsert});
  method.Update({0, 9, Action::kInsert});
  method.Update({0, 5, Action::kDelete});
  // Registers may be empty (if 5 was the min and 9 hadn't claimed it) or
  // hold item 9 — never the deleted item.
  for (uint32_t j = 0; j < config.k; ++j) {
    const MinRegister& reg = method.RegisterAt(0, j);
    if (reg.occupied()) {
      EXPECT_EQ(reg.item, 9u);
    }
  }
  method.Update({0, 9, Action::kDelete});
  for (uint32_t j = 0; j < config.k; ++j) {
    EXPECT_FALSE(method.RegisterAt(0, j).occupied());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, FeistelModeTest,
                         ::testing::Values(HashMode::kMixer,
                                           HashMode::kFeistel),
                         [](const auto& info) {
                           return info.param == HashMode::kMixer
                                      ? "Mixer"
                                      : "Feistel";
                         });

}  // namespace
}  // namespace vos::baseline

namespace vos::harness {
namespace {

using core::PairEstimate;
using stream::Action;
using stream::Element;
using stream::UserId;

/// "VOS-sharded" across the (shards, ingest_threads) matrix: whatever the
/// pipeline mode, the method must land on the deterministic synchronous
/// single-routing state — same estimates as the (shards, 0) twin — and
/// track truth to sketch accuracy.
class ShardedModeMatrixTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, unsigned>> {
 protected:
  static std::unique_ptr<core::SimilarityMethod> Make(uint32_t shards,
                                                      unsigned threads) {
    MethodFactoryConfig config;
    config.base_k = 100;
    config.num_users = 48;
    config.num_items = 100000;
    config.seed = 53;
    config.vos_shards = shards;
    config.ingest_threads = threads;
    config.ingest_batch = 64;  // many batches through the pipeline
    auto method = CreateMethod("VOS-sharded", config);
    VOS_CHECK(method.ok()) << method.status().ToString();
    return *std::move(method);
  }
};

TEST_P(ShardedModeMatrixTest, PipelineModeDoesNotChangeEstimates) {
  const auto [shards, threads] = GetParam();
  auto method = Make(shards, threads);
  auto reference = Make(shards, 0);  // synchronous routing: ground truth
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  for (const Element& e : stream->elements()) {
    if (e.user >= 48) continue;
    method->Update(e);
    reference->Update(e);
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  ASSERT_TRUE(reference->FlushIngest().ok());
  for (UserId u = 0; u < 12; ++u) {
    for (UserId v = u + 1; v < 12; ++v) {
      const PairEstimate got = method->EstimatePair(u, v);
      const PairEstimate want = reference->EstimatePair(u, v);
      EXPECT_EQ(got.common, want.common)
          << "shards=" << shards << " threads=" << threads << " pair=("
          << u << "," << v << ")";
      EXPECT_EQ(got.jaccard, want.jaccard);
    }
  }
}

TEST_P(ShardedModeMatrixTest, TracksPlantedOverlap) {
  const auto [shards, threads] = GetParam();
  auto method = Make(shards, threads);
  // 200 shared of 300 items each: J = 200/400 = 0.5.
  for (uint32_t i = 0; i < 300; ++i) {
    method->Update({0, i, Action::kInsert});
    method->Update({1, i < 200 ? i : i + 50000, Action::kInsert});
  }
  ASSERT_TRUE(method->FlushIngest().ok());
  const PairEstimate est = method->EstimatePair(0, 1);
  EXPECT_NEAR(est.common, 200.0, 60.0)
      << "shards=" << shards << " threads=" << threads;
  EXPECT_NEAR(est.jaccard, 0.5, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    ShardThreadMatrix, ShardedModeMatrixTest,
    ::testing::Combine(::testing::Values(1u, 4u), ::testing::Values(0u, 2u)),
    [](const auto& info) {
      return "s" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vos::harness

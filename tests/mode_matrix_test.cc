// Parameter-matrix property tests: digest width b for b-bit minwise, and
// the exact-permutation (Feistel) mode across the min-wise baselines.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bbit_minwise.h"
#include "baselines/minhash.h"
#include "baselines/oph.h"

namespace vos::baseline {
namespace {

using stream::Action;
using stream::ItemId;

constexpr uint64_t kItems = 100000;

/// b-bit sweep: the collision-corrected estimator must stay centred on the
/// true J for every digest width (variance grows as b shrinks).
class BbitWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BbitWidthTest, CorrectionCentersEstimate) {
  const uint32_t b = GetParam();
  // Average over several seeds: the correction must remove the 2^-b
  // collision inflation at every width.
  double total = 0.0;
  constexpr int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    BbitMinwiseConfig config;
    config.k = 600;
    config.b = b;
    config.seed = 1000 + run;
    BbitMinwise method(config, 2, kItems);
    for (ItemId i = 0; i < 200; ++i) {
      method.Update({0, i, Action::kInsert});
      method.Update({1, i + 100, Action::kInsert});  // 100 of 300 shared
    }
    total += method.EstimatePair(0, 1).jaccard;
  }
  const double true_j = 100.0 / 300.0;
  // sd per run ≈ sqrt(J(1-J)/k)/(1-2^-b); the mean of 12 runs is tight.
  const double tolerance = b == 1 ? 0.06 : 0.04;
  EXPECT_NEAR(total / kRuns, true_j, tolerance) << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Widths, BbitWidthTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

/// Exact-permutation mode must agree statistically with mixer mode.
class FeistelModeTest : public ::testing::TestWithParam<HashMode> {};

TEST_P(FeistelModeTest, OphAccuracyHolds) {
  OphConfig config;
  config.k = 512;
  config.hash_mode = GetParam();
  config.seed = 21;
  // Feistel permutations need the real (smaller) item domain.
  const uint64_t domain = GetParam() == HashMode::kFeistel ? 4096 : kItems;
  Oph method(config, 2, domain);
  for (ItemId i = 0; i < 300; ++i) {
    method.Update({0, i, Action::kInsert});
    method.Update({1, i + 150, Action::kInsert});  // 150 of 450 shared
  }
  EXPECT_NEAR(method.EstimatePair(0, 1).jaccard, 150.0 / 450.0, 0.09);
}

TEST_P(FeistelModeTest, MinHashDeletionSemanticsIndependentOfMode) {
  MinHashConfig config;
  config.k = 64;
  config.hash_mode = GetParam();
  const uint64_t domain = GetParam() == HashMode::kFeistel ? 1024 : kItems;
  MinHash method(config, 1, domain);
  method.Update({0, 5, Action::kInsert});
  method.Update({0, 9, Action::kInsert});
  method.Update({0, 5, Action::kDelete});
  // Registers may be empty (if 5 was the min and 9 hadn't claimed it) or
  // hold item 9 — never the deleted item.
  for (uint32_t j = 0; j < config.k; ++j) {
    const MinRegister& reg = method.RegisterAt(0, j);
    if (reg.occupied()) {
      EXPECT_EQ(reg.item, 9u);
    }
  }
  method.Update({0, 9, Action::kDelete});
  for (uint32_t j = 0; j < config.k; ++j) {
    EXPECT_FALSE(method.RegisterAt(0, j).occupied());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, FeistelModeTest,
                         ::testing::Values(HashMode::kMixer,
                                           HashMode::kFeistel),
                         [](const auto& info) {
                           return info.param == HashMode::kMixer
                                      ? "Mixer"
                                      : "Feistel";
                         });

}  // namespace
}  // namespace vos::baseline

// Tests for the cost-based query optimizer (core/query_optimizer.h).
//
// Covered contracts:
//
//   * Cost model units: ChoosePassPlan prices both plans with exactly the
//     documented formulas on synthetic statistics, the force modes pin
//     the verdict, and a forced banded plan degrades to exact when no
//     banding table exists.
//   * Plan-choice determinism: PlanAllPairs is pure per process —
//     concurrent callers on many threads see one identical verdict.
//   * Forced-plan (VOS_PLAN) bit-identity: the exact leg reproduces the
//     optimizer-free result bit for bit; the banded leg is a subset of it
//     with bit-identical per-pair estimates; auto lands on one of the
//     two, matching its own report.
//   * Banded TopK ⊆ exact TopK (full ranking) with identical estimates.
//   * Degenerate-bucket guard: an adversarial all-zero snapshot (every
//     row in one bucket) keeps the banded candidate bound subquadratic,
//     and the capped candidates are a subset of the uncapped ones.
//   * Incremental BandingTable::Patch after RefreshDirty is bit-identical
//     to a from-scratch build over the refreshed snapshot.
//   * Measured-recall feedback: an undershoot re-plans the next snapshot
//     exact (forced), and one clean snapshot clears the latch.
//   * Adaptive SPSC spin budgets stay within their clamp under sustained
//     back-pressure while the flush contracts keep holding.
//
// The CI plan matrix exports VOS_PLAN globally, so every test whose
// outcome depends on the mode pins the env var itself (ScopedPlanEnv).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/digest_matrix.h"
#include "core/pair_scan.h"
#include "core/query_optimizer.h"
#include "core/query_planner.h"
#include "core/scan_common.h"
#include "core/sharded_vos_sketch.h"
#include "core/similarity_index.h"
#include "core/vos_sketch.h"

namespace vos::core {
namespace {

using stream::Action;
using stream::Element;
using stream::ItemId;
using stream::UserId;

/// Pins VOS_PLAN for one test scope and restores the previous value on
/// exit (nullptr = unset), so tests hold under the CI forced-plan matrix.
class ScopedPlanEnv {
 public:
  explicit ScopedPlanEnv(const char* value) {
    const char* old = std::getenv("VOS_PLAN");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("VOS_PLAN");
    } else {
      ::setenv("VOS_PLAN", value, 1);
    }
  }
  ~ScopedPlanEnv() {
    if (had_old_) {
      ::setenv("VOS_PLAN", old_.c_str(), 1);
    } else {
      ::unsetenv("VOS_PLAN");
    }
  }
  ScopedPlanEnv(const ScopedPlanEnv&) = delete;
  ScopedPlanEnv& operator=(const ScopedPlanEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

/// Overrides the calibrated constants for one test scope so cost
/// arithmetic is checked against known numbers, not probe timings.
class ScopedCosts {
 public:
  explicit ScopedCosts(const optimizer::KernelCostModel& costs) {
    optimizer::SetCalibratedCostsForTest(&costs);
  }
  ~ScopedCosts() { optimizer::SetCalibratedCostsForTest(nullptr); }
  ScopedCosts(const ScopedCosts&) = delete;
  ScopedCosts& operator=(const ScopedCosts&) = delete;
};

/// Community stream with planted pairs (same shape as pair_scan_test.cc:
/// every 4-user group's first two members share 75% of their items).
std::vector<Element> CommunityStream(UserId users, size_t items_per_user,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    const bool clustered = u % 4 <= 1;
    const uint64_t base = clustered ? (u / 4) * uint64_t{100000}
                                    : 10000000 + u * uint64_t{100000};
    for (size_t i = 0; i < items_per_user; ++i) {
      const bool shared = clustered && i < items_per_user * 3 / 4;
      const ItemId item = static_cast<ItemId>(
          shared ? base + i : base + 50000 + (u % 4) * 10000 + i);
      elements.push_back({u, item, Action::kInsert});
      if (!shared && rng.NextBernoulli(0.2)) {
        elements.push_back({u, item, Action::kDelete});
        elements.push_back({u, item + 7000, Action::kInsert});
      }
    }
  }
  return elements;
}

VosConfig IndexConfig(uint32_t k = 512, uint64_t m = 1 << 16) {
  VosConfig config;
  config.k = k;
  config.m = m;
  config.seed = 29;
  return config;
}

ShardedVosConfig PlannerConfig(uint32_t shards) {
  ShardedVosConfig config;
  config.base = IndexConfig();
  config.base.seed = 31;
  config.num_shards = shards;
  return config;
}

std::vector<UserId> AllUsers(UserId users) {
  std::vector<UserId> candidates;
  for (UserId u = 0; u < users; ++u) candidates.push_back(u);
  return candidates;
}

template <typename PairT>
void ExpectPairsIdentical(const std::vector<PairT>& got,
                          const std::vector<PairT>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, want[i].u) << context << " pair " << i;
    EXPECT_EQ(got[i].v, want[i].v) << context << " pair " << i;
    EXPECT_EQ(got[i].common, want[i].common) << context << " pair " << i;
    EXPECT_EQ(got[i].jaccard, want[i].jaccard) << context << " pair " << i;
  }
}

/// Asserts `got` ⊆ `want` by (u, v) with bit-identical estimates — the
/// precision-1 contract every banded plan must keep.
template <typename PairT>
void ExpectSubsetIdenticalEstimates(const std::vector<PairT>& got,
                                    const std::vector<PairT>& want,
                                    const std::string& context) {
  std::map<std::pair<UserId, UserId>, std::pair<double, double>> by_pair;
  for (const auto& pair : want) {
    by_pair[{pair.u, pair.v}] = {pair.common, pair.jaccard};
  }
  for (const auto& pair : got) {
    const auto it = by_pair.find({pair.u, pair.v});
    ASSERT_NE(it, by_pair.end())
        << context << ": pair (" << pair.u << "," << pair.v
        << ") not in the exact result — precision must be 1";
    EXPECT_EQ(pair.common, it->second.first) << context;
    EXPECT_EQ(pair.jaccard, it->second.second) << context;
  }
}

// ------------------------------------------------------- pure functions

TEST(QueryOptimizerTest, ParsePlanModeAndNames) {
  optimizer::PlanMode mode;
  ASSERT_TRUE(optimizer::ParsePlanMode("auto", &mode));
  EXPECT_EQ(mode, optimizer::PlanMode::kAuto);
  ASSERT_TRUE(optimizer::ParsePlanMode("exact", &mode));
  EXPECT_EQ(mode, optimizer::PlanMode::kForceExact);
  ASSERT_TRUE(optimizer::ParsePlanMode("banded", &mode));
  EXPECT_EQ(mode, optimizer::PlanMode::kForceBanded);
  EXPECT_FALSE(optimizer::ParsePlanMode("tiled", &mode));
  EXPECT_FALSE(optimizer::ParsePlanMode("", &mode));
  EXPECT_FALSE(optimizer::ParsePlanMode(nullptr, &mode));

  EXPECT_STREQ(optimizer::PlanModeName(optimizer::PlanMode::kAuto), "auto");
  EXPECT_STREQ(optimizer::PlanModeName(optimizer::PlanMode::kForceExact),
               "exact");
  EXPECT_STREQ(optimizer::PlanModeName(optimizer::PlanMode::kForceBanded),
               "banded");
  EXPECT_STREQ(optimizer::PlanKindName(optimizer::PlanKind::kExact), "exact");
  EXPECT_STREQ(optimizer::PlanKindName(optimizer::PlanKind::kBanded),
               "banded");
}

TEST(QueryOptimizerTest, EffectivePlanModeHonorsEnvOverride) {
  {
    ScopedPlanEnv unset(nullptr);
    EXPECT_EQ(optimizer::EffectivePlanMode(optimizer::PlanMode::kForceBanded),
              optimizer::PlanMode::kForceBanded);
  }
  {
    ScopedPlanEnv exact("exact");
    EXPECT_EQ(optimizer::EffectivePlanMode(optimizer::PlanMode::kAuto),
              optimizer::PlanMode::kForceExact);
    EXPECT_EQ(optimizer::EffectivePlanMode(optimizer::PlanMode::kForceBanded),
              optimizer::PlanMode::kForceExact);
  }
  {
    // Unknown values warn (once) and fall back to the configured mode.
    ScopedPlanEnv junk("fastest");
    EXPECT_EQ(optimizer::EffectivePlanMode(optimizer::PlanMode::kForceExact),
              optimizer::PlanMode::kForceExact);
  }
}

TEST(QueryOptimizerTest, ChoosePassPlanPricesDocumentedFormulas) {
  optimizer::KernelCostModel costs;
  costs.seconds_per_pair_word = 2.0;
  costs.seconds_per_pair = 3.0;
  costs.seconds_per_candidate = 5.0;
  costs.seconds_per_entry = 7.0;

  optimizer::PassStats stats;
  stats.words_per_row = 4;
  stats.exact_pairs = 100;
  stats.banded_entries = 10;
  stats.banded_candidates = 6;
  stats.banded_available = true;
  stats.dirty_fraction = 0.5;

  const double per_pair = 4 * 2.0 + 3.0;  // 11
  const double want_exact = 100 * per_pair;
  const double want_banded = 10 * 7.0 + 6 * (per_pair + 5.0) + 0.5 * 10 * 7.0;
  const auto plan =
      optimizer::ChoosePassPlan(stats, costs, optimizer::PlanMode::kAuto);
  EXPECT_DOUBLE_EQ(plan.exact_cost, want_exact);
  EXPECT_DOUBLE_EQ(plan.banded_cost, want_banded);
  EXPECT_EQ(plan.kind, optimizer::PlanKind::kBanded)
      << "few candidates must beat the full window scan";
  EXPECT_FALSE(plan.forced);

  // Narrow windows flip the verdict: exact work below the bucket walk.
  optimizer::PassStats narrow = stats;
  narrow.exact_pairs = 5;
  const auto narrow_plan =
      optimizer::ChoosePassPlan(narrow, costs, optimizer::PlanMode::kAuto);
  EXPECT_EQ(narrow_plan.kind, optimizer::PlanKind::kExact);

  // A dirtier refresh cadence taxes the banded plan's upkeep term only.
  optimizer::PassStats dirty = stats;
  dirty.dirty_fraction = 1.0;
  const auto dirty_plan =
      optimizer::ChoosePassPlan(dirty, costs, optimizer::PlanMode::kAuto);
  EXPECT_DOUBLE_EQ(dirty_plan.banded_cost, want_banded + 0.5 * 10 * 7.0);
  EXPECT_DOUBLE_EQ(dirty_plan.exact_cost, want_exact);
}

TEST(QueryOptimizerTest, ChoosePassPlanForcedModesAndDegradation) {
  optimizer::KernelCostModel costs;
  costs.seconds_per_pair_word = 1.0;
  costs.seconds_per_pair = 1.0;
  costs.seconds_per_candidate = 1.0;
  costs.seconds_per_entry = 1.0;

  optimizer::PassStats stats;
  stats.words_per_row = 8;
  stats.exact_pairs = 10;
  stats.banded_entries = 1000;
  stats.banded_candidates = 1000;
  stats.banded_available = true;

  const auto forced_banded = optimizer::ChoosePassPlan(
      stats, costs, optimizer::PlanMode::kForceBanded);
  EXPECT_EQ(forced_banded.kind, optimizer::PlanKind::kBanded);
  EXPECT_TRUE(forced_banded.forced)
      << "a pinned plan must be reported as forced even when it loses";
  const auto forced_exact = optimizer::ChoosePassPlan(
      stats, costs, optimizer::PlanMode::kForceExact);
  EXPECT_EQ(forced_exact.kind, optimizer::PlanKind::kExact);
  EXPECT_TRUE(forced_exact.forced);

  // No banding table: every mode lands on exact; banded prices infinite.
  optimizer::PassStats unavailable = stats;
  unavailable.banded_available = false;
  for (const auto mode :
       {optimizer::PlanMode::kAuto, optimizer::PlanMode::kForceExact,
        optimizer::PlanMode::kForceBanded}) {
    const auto plan = optimizer::ChoosePassPlan(unavailable, costs, mode);
    EXPECT_EQ(plan.kind, optimizer::PlanKind::kExact);
    EXPECT_EQ(plan.banded_cost, std::numeric_limits<double>::infinity());
    EXPECT_EQ(plan.forced, mode != optimizer::PlanMode::kAuto);
  }
}

TEST(QueryOptimizerTest, CalibratedCostsArePositiveAndStable) {
  const optimizer::KernelCostModel first = optimizer::CalibratedCosts();
  EXPECT_GT(first.seconds_per_pair_word, 0.0);
  EXPECT_GT(first.seconds_per_pair, 0.0);
  EXPECT_GT(first.seconds_per_candidate, 0.0);
  EXPECT_GT(first.seconds_per_entry, 0.0);
  // The probe runs once per process per level; repeat calls must return
  // the cached constants bit for bit (plan determinism relies on it).
  const optimizer::KernelCostModel second = optimizer::CalibratedCosts();
  EXPECT_EQ(first.seconds_per_pair_word, second.seconds_per_pair_word);
  EXPECT_EQ(first.seconds_per_pair, second.seconds_per_pair);
  EXPECT_EQ(first.seconds_per_candidate, second.seconds_per_candidate);
  EXPECT_EQ(first.seconds_per_entry, second.seconds_per_entry);
  EXPECT_EQ(first.level, second.level);
}

size_t BruteTrianglePairs(const std::vector<uint32_t>& cards, double tau) {
  const double tau_frac = tau / (1.0 + tau);
  size_t pairs = 0;
  for (size_t p = 0; p < cards.size(); ++p) {
    for (size_t q = p + 1; q < cards.size(); ++q) {
      const double lo = std::min(cards[p], cards[q]);
      const double sum = static_cast<double>(cards[p]) + cards[q];
      if (!scan::CardinalityFail(lo, sum, tau_frac)) ++pairs;
    }
  }
  return pairs;
}

TEST(QueryOptimizerTest, WindowPairCountsMatchBruteForce) {
  Rng rng(47);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{17},
                         size_t{64}, size_t{257}}) {
    std::vector<uint32_t> cards(n);
    for (uint32_t& c : cards) c = static_cast<uint32_t>(rng.NextU64() % 500);
    std::sort(cards.begin(), cards.end());
    std::vector<uint32_t> other(n / 2 + (n > 0 ? 1 : 0));
    for (uint32_t& c : other) c = static_cast<uint32_t>(rng.NextU64() % 500);
    std::sort(other.begin(), other.end());

    for (const double tau : {0.1, 0.4, 0.9}) {
      EXPECT_EQ(optimizer::TriangleWindowPairs(cards.data(), n, tau, true),
                BruteTrianglePairs(cards, tau))
          << "n=" << n << " tau=" << tau;

      const double tau_frac = tau / (1.0 + tau);
      size_t rect = 0;
      for (const uint32_t a : cards) {
        for (const uint32_t b : other) {
          const double lo = std::min(a, b);
          if (!scan::CardinalityFail(lo, static_cast<double>(a) + b,
                                     tau_frac)) {
            ++rect;
          }
        }
      }
      EXPECT_EQ(optimizer::RectangleWindowPairs(cards.data(), n, other.data(),
                                                other.size(), tau, true),
                rect)
          << "n=" << n << " tau=" << tau;
    }
    // prefilter off = the full pair space.
    EXPECT_EQ(optimizer::TriangleWindowPairs(cards.data(), n, 0.4, false),
              n < 2 ? 0 : n * (n - 1) / 2);
    EXPECT_EQ(optimizer::RectangleWindowPairs(cards.data(), n, other.data(),
                                              other.size(), 0.4, false),
              n * other.size());
  }
}

TEST(QueryOptimizerTest, AdaptiveTileRowsBoundedAlignedMonotone) {
  size_t previous = std::numeric_limits<size_t>::max();
  for (const size_t words : {size_t{0}, size_t{1}, size_t{8}, size_t{25},
                             size_t{100}, size_t{1000}, size_t{100000}}) {
    const size_t tile = optimizer::AdaptiveTileRows(words);
    EXPECT_GE(tile, 64u) << "words=" << words;
    EXPECT_LE(tile, 2048u) << "words=" << words;
    EXPECT_EQ(tile % 8, 0u) << "words=" << words;
    EXPECT_EQ(tile, optimizer::AdaptiveTileRows(words))
        << "must be deterministic per process";
    if (words > 0) {
      EXPECT_LE(tile, previous) << "wider rows cannot grow the tile";
      previous = tile;
    }
  }
}

// ----------------------------------------------- plan-choice determinism

TEST(QueryOptimizerTest, PlanChoiceDeterministicAcrossThreads) {
  ScopedPlanEnv env("auto");
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 60, 5);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  QueryPlanner planner(sketch, {}, options);
  planner.Rebuild(AllUsers(users));

  const std::vector<optimizer::PassReport> reference =
      planner.PlanAllPairs(0.4);
  ASSERT_FALSE(reference.empty());

  constexpr unsigned kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int repeat = 0; repeat < 8; ++repeat) {
        const auto got = planner.PlanAllPairs(0.4);
        if (got.size() != reference.size()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].plan.kind != reference[i].plan.kind ||
              got[i].plan.exact_cost != reference[i].plan.exact_cost ||
              got[i].plan.banded_cost != reference[i].plan.banded_cost ||
              got[i].stats.exact_pairs != reference[i].stats.exact_pairs) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "every thread must see the identical verdicts and costs";
}

// ------------------------------------------- forced-plan bit-identity

TEST(QueryOptimizerTest, ForcedPlanBitIdentityOnIndex) {
  const UserId users = 96;
  const std::vector<Element> elements = CommunityStream(users, 60, 9);
  VosSketch sketch(IndexConfig(), users);
  for (const Element& e : elements) sketch.Update(e);
  const std::vector<UserId> candidates = AllUsers(users);

  // The optimizer-free reference: a banding-off index (no table exists,
  // so every plan is exact by construction).
  std::vector<SimilarityIndex::Pair> reference;
  {
    ScopedPlanEnv env(nullptr);
    SimilarityIndex plain(sketch);
    plain.Rebuild(candidates);
    reference = plain.AllPairsAbove(0.4);
  }
  ASSERT_FALSE(reference.empty());

  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 4;
  SimilarityIndex index(sketch, {}, banded_options);
  index.Rebuild(candidates);
  ASSERT_NE(index.banding_table(), nullptr);

  {
    ScopedPlanEnv env("exact");
    const auto report = index.PlanAllPairs(0.4);
    EXPECT_EQ(report.plan.kind, optimizer::PlanKind::kExact);
    EXPECT_TRUE(report.plan.forced);
    ExpectPairsIdentical(index.AllPairsAbove(0.4), reference,
                         "VOS_PLAN=exact over a banded index");
  }
  {
    ScopedPlanEnv env("banded");
    const auto report = index.PlanAllPairs(0.4);
    EXPECT_EQ(report.plan.kind, optimizer::PlanKind::kBanded);
    EXPECT_TRUE(report.plan.forced);
    const auto banded_pairs = index.AllPairsAbove(0.4);
    ASSERT_FALSE(banded_pairs.empty());
    ExpectSubsetIdenticalEstimates(banded_pairs, reference,
                                   "VOS_PLAN=banded over a banded index");
  }
  {
    // Auto must land on whichever plan it reported: exact reproduces the
    // reference bit for bit, banded is a subset with identical estimates.
    ScopedPlanEnv env("auto");
    const auto report = index.PlanAllPairs(0.4);
    EXPECT_FALSE(report.plan.forced);
    const auto auto_pairs = index.AllPairsAbove(0.4);
    if (report.plan.kind == optimizer::PlanKind::kExact) {
      ExpectPairsIdentical(auto_pairs, reference, "auto chose exact");
    } else {
      ExpectSubsetIdenticalEstimates(auto_pairs, reference,
                                     "auto chose banded");
    }
  }
}

TEST(QueryOptimizerTest, ForcedPlanBitIdentityOnPlanner) {
  const UserId users = 96;
  const std::vector<Element> elements = CommunityStream(users, 60, 9);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());
  const std::vector<UserId> candidates = AllUsers(users);

  std::vector<QueryPlanner::Pair> reference;
  {
    ScopedPlanEnv env(nullptr);
    QueryPlanner plain(sketch);
    plain.Rebuild(candidates);
    reference = plain.AllPairsAbove(0.4);
  }
  ASSERT_FALSE(reference.empty());

  QueryOptions banded_options;
  banded_options.banding_bands = 32;
  banded_options.banding_rows_per_band = 4;
  QueryPlanner planner(sketch, {}, banded_options);
  planner.Rebuild(candidates);

  {
    ScopedPlanEnv env("exact");
    for (const auto& report : planner.PlanAllPairs(0.4)) {
      EXPECT_EQ(report.plan.kind, optimizer::PlanKind::kExact);
      EXPECT_TRUE(report.plan.forced);
    }
    ExpectPairsIdentical(planner.AllPairsAbove(0.4), reference,
                         "VOS_PLAN=exact over a banded planner");
  }
  {
    ScopedPlanEnv env("banded");
    const auto reports = planner.PlanAllPairs(0.4);
    ASSERT_FALSE(reports.empty());
    for (const auto& report : reports) {
      EXPECT_EQ(report.plan.kind, optimizer::PlanKind::kBanded);
    }
    const auto banded_pairs = planner.AllPairsAbove(0.4);
    ASSERT_FALSE(banded_pairs.empty());
    ExpectSubsetIdenticalEstimates(banded_pairs, reference,
                                   "VOS_PLAN=banded over a banded planner");
    size_t banded_cross = 0;
    for (const auto& pair : banded_pairs) {
      if (sketch.ShardOf(pair.u) != sketch.ShardOf(pair.v)) ++banded_cross;
    }
    EXPECT_GT(banded_cross, 0u)
        << "banded rectangles must surface cross-shard pairs";
  }
}

// ------------------------------------------------------- banded TopK

TEST(QueryOptimizerTest, BandedTopKSubsetOfExactWithIdenticalEstimates) {
  const UserId users = 96;
  const std::vector<Element> elements = CommunityStream(users, 60, 9);
  VosSketch sketch(IndexConfig(), users);
  for (const Element& e : elements) sketch.Update(e);

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  SimilarityIndex index(sketch, {}, options);
  index.Rebuild(AllUsers(users));
  ASSERT_NE(index.banding_table(), nullptr);

  for (const UserId query : {UserId{0}, UserId{2}, UserId{33}}) {
    // k = n: the full ranking, where subset-with-identical-estimates is
    // exactly the banding contract (a truncated k could admit a lower
    // scorer in place of a missed higher one).
    std::vector<SimilarityIndex::Entry> exact_entries;
    {
      ScopedPlanEnv env("exact");
      exact_entries = index.TopK(query, users);
      EXPECT_EQ(index.last_topk_plan(), optimizer::PlanKind::kExact);
    }
    ASSERT_EQ(exact_entries.size(), static_cast<size_t>(users) - 1);
    std::map<UserId, std::pair<double, double>> exact_by_user;
    for (const auto& entry : exact_entries) {
      exact_by_user[entry.user] = {entry.common, entry.jaccard};
    }

    ScopedPlanEnv env("banded");
    const auto banded_entries = index.TopK(query, users);
    EXPECT_EQ(index.last_topk_plan(), optimizer::PlanKind::kBanded);
    EXPECT_LE(banded_entries.size(), exact_entries.size());
    for (const auto& entry : banded_entries) {
      const auto it = exact_by_user.find(entry.user);
      ASSERT_NE(it, exact_by_user.end())
          << "banded TopK surfaced user " << entry.user
          << " missing from the exact ranking (query " << query << ")";
      EXPECT_EQ(entry.common, it->second.first);
      EXPECT_EQ(entry.jaccard, it->second.second);
    }
    if (query % 4 <= 1) {
      // Clustered queries collide with their planted partner in some
      // band with overwhelming probability — banded must surface them.
      EXPECT_FALSE(banded_entries.empty()) << "query " << query;
    }
  }
}

TEST(QueryOptimizerTest, BandedPlannerTopKSubsetOfExact) {
  const UserId users = 72;
  const std::vector<Element> elements = CommunityStream(users, 60, 5);
  ShardedVosSketch sketch(PlannerConfig(4), users);
  sketch.UpdateBatch(elements.data(), elements.size());

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  QueryPlanner planner(sketch, {}, options);
  planner.Rebuild(AllUsers(users));

  for (const UserId query : {UserId{1}, UserId{5}}) {
    std::vector<QueryPlanner::Entry> exact_entries;
    {
      ScopedPlanEnv env("exact");
      exact_entries = planner.TopK(query, users);
    }
    ASSERT_EQ(exact_entries.size(), static_cast<size_t>(users) - 1);
    std::map<UserId, std::pair<double, double>> exact_by_user;
    for (const auto& entry : exact_entries) {
      exact_by_user[entry.user] = {entry.common, entry.jaccard};
    }

    ScopedPlanEnv env("banded");
    const auto banded_entries = planner.TopK(query, users);
    ASSERT_FALSE(banded_entries.empty()) << "query " << query;
    for (const auto& entry : banded_entries) {
      const auto it = exact_by_user.find(entry.user);
      ASSERT_NE(it, exact_by_user.end()) << "query " << query;
      EXPECT_EQ(entry.common, it->second.first);
      EXPECT_EQ(entry.jaccard, it->second.second);
    }
  }
}

// ------------------------------------------- degenerate-bucket guard

TEST(QueryOptimizerTest, DegenerateBucketGuardKeepsCandidatesSubquadratic) {
  // The adversarial snapshot banding degenerates on: every digest
  // all-zero, so each band has ONE bucket holding every row.
  const uint32_t k = 192;
  const uint32_t bands = 6;
  const uint32_t rows_per_band = 7;
  const size_t rows = 256;
  const DigestMatrix zeros(k, rows);  // zero-initialized

  const pair_scan::BandingTable uncapped(zeros, bands, rows_per_band);
  EXPECT_EQ(uncapped.MaxBucketRun(), rows);
  EXPECT_EQ(uncapped.TriangleCandidateBound(),
            static_cast<size_t>(bands) * (rows * (rows - 1) / 2))
      << "uncapped: every band contributes the full quadratic bucket";

  const uint32_t cap = 8;
  const pair_scan::BandingTable capped(zeros, bands, rows_per_band, nullptr,
                                       cap);
  // Cohorts bound the per-run work by run · cap pairs: subquadratic in
  // rows for fixed cap.
  EXPECT_LE(capped.TriangleCandidateBound(),
            static_cast<size_t>(bands) * rows * cap);
  EXPECT_LT(capped.TriangleCandidateBound(), uncapped.TriangleCandidateBound())
      << "the guard must shrink the degenerate bucket's work";

  const auto capped_pairs = capped.TriangleCandidates();
  EXPECT_LE(capped_pairs.size(), capped.TriangleCandidateBound());
  const auto uncapped_pairs = uncapped.TriangleCandidates();
  ASSERT_TRUE(std::is_sorted(capped_pairs.begin(), capped_pairs.end()));
  EXPECT_TRUE(std::includes(uncapped_pairs.begin(), uncapped_pairs.end(),
                            capped_pairs.begin(), capped_pairs.end()))
      << "capped candidates must be a subset of the uncapped ones";

  // The rectangle twin over two degenerate sides.
  const pair_scan::BandingTable capped_b(zeros, bands, rows_per_band, nullptr,
                                         cap);
  EXPECT_LE(pair_scan::BandingTable::RectangleCandidateBound(capped, capped_b),
            static_cast<size_t>(bands) * rows * cap * cap)
      << "aligned cohorts bound the cross product per run";
  EXPECT_LT(pair_scan::BandingTable::RectangleCandidateBound(capped, capped_b),
            static_cast<size_t>(bands) * rows * rows);
}

// --------------------------------------------------- Patch ≡ rebuild

TEST(QueryOptimizerTest, BandingPatchBitIdenticalToRebuildAfterRefresh) {
  const UserId users = 64;
  const std::vector<Element> elements = CommunityStream(users, 50, 21);
  VosConfig config = IndexConfig();
  config.track_dirty = true;
  VosSketch sketch(config, users);
  for (const Element& e : elements) sketch.Update(e);

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  options.incremental = true;
  SimilarityIndex index(sketch, {}, options);
  index.Rebuild(AllUsers(users));
  ASSERT_NE(index.banding_table(), nullptr);

  ItemId next_item = 1 << 29;
  for (const UserId touched : {UserId{0}, UserId{17}, UserId{40}}) {
    sketch.Update({touched, next_item++, Action::kInsert});
    sketch.Update({touched, next_item++, Action::kInsert});
  }
  ASSERT_TRUE(index.RefreshDirty())
      << "the incremental path (and with it Patch) must actually run";
  const pair_scan::BandingTable* patched = index.banding_table();
  ASSERT_NE(patched, nullptr);
  EXPECT_LT(index.last_refresh_dirty_fraction(), 1.0);
  EXPECT_GT(index.last_refresh_dirty_fraction(), 0.0);

  // A from-scratch build over the refreshed snapshot, with the identical
  // stable-id permutation (stable id = candidate index).
  std::vector<uint32_t> stable_of_row(index.matrix().rows());
  for (size_t p = 0; p < stable_of_row.size(); ++p) {
    stable_of_row[p] = static_cast<uint32_t>(index.sorted_to_candidate(p));
  }
  const pair_scan::BandingTable rebuilt(
      index.matrix(), patched->bands(), patched->rows_per_band(),
      stable_of_row.data(), patched->max_bucket());

  ASSERT_EQ(patched->entries().size(), rebuilt.entries().size());
  EXPECT_EQ(patched->entries(), rebuilt.entries())
      << "Patch must restore the exact (key, stable) order a full sort "
         "would produce";
  EXPECT_EQ(patched->TriangleCandidates(), rebuilt.TriangleCandidates());
}

// ------------------------------------------------- recall feedback

TEST(QueryOptimizerTest, RecallFeedbackForcesExactUntilCleanSnapshot) {
  ScopedPlanEnv env("auto");
  const UserId users = 64;
  const std::vector<Element> elements = CommunityStream(users, 50, 27);
  VosSketch sketch(IndexConfig(), users);
  for (const Element& e : elements) sketch.Update(e);
  const std::vector<UserId> candidates = AllUsers(users);

  QueryOptions options;
  options.banding_bands = 32;
  options.banding_rows_per_band = 4;
  options.banding_recall_floor = 0.95;
  SimilarityIndex index(sketch, {}, options);
  index.Rebuild(candidates);
  EXPECT_FALSE(index.banding_feedback_force_exact());

  // A compliant recall never trips the latch.
  index.ReportMeasuredRecall(0.99);
  index.Rebuild(candidates);
  EXPECT_FALSE(index.banding_feedback_force_exact());

  // An undershoot re-plans the NEXT snapshot exact, reported as forced.
  index.ReportMeasuredRecall(0.5);
  EXPECT_FALSE(index.banding_feedback_force_exact())
      << "feedback latches at the snapshot boundary, not mid-query";
  index.Rebuild(candidates);
  EXPECT_TRUE(index.banding_feedback_force_exact());
  const auto report = index.PlanAllPairs(0.4);
  EXPECT_EQ(report.plan.kind, optimizer::PlanKind::kExact);
  EXPECT_TRUE(report.plan.forced);

  // One snapshot without an undershoot clears it.
  index.Rebuild(candidates);
  EXPECT_FALSE(index.banding_feedback_force_exact());

  // Floor 0 (the default) disables the feedback entirely.
  QueryOptions no_floor = options;
  no_floor.banding_recall_floor = 0.0;
  SimilarityIndex off(sketch, {}, no_floor);
  off.Rebuild(candidates);
  off.ReportMeasuredRecall(0.0);
  off.Rebuild(candidates);
  EXPECT_FALSE(off.banding_feedback_force_exact());
}

// --------------------------------------------- adaptive SPSC spin budgets

TEST(QueryOptimizerTest, AdaptiveSpinBudgetsBoundedUnderBackPressure) {
  const UserId users = 48;
  const unsigned producers = 2;
  const uint32_t shards = 4;
  std::vector<Element> elements;
  for (UserId u = 0; u < users; ++u) {
    for (uint32_t i = 0; i < 120; ++i) {
      elements.push_back(
          {u, static_cast<ItemId>(u * 1000 + i), Action::kInsert});
    }
  }
  std::vector<std::vector<Element>> lanes(producers);
  for (size_t i = 0; i < elements.size(); ++i) {
    lanes[i % producers].push_back(elements[i]);
  }

  ShardedVosConfig config = PlannerConfig(shards);
  config.ingest_threads = 2;
  config.ingest_producers = producers;
  config.queue_capacity = 1;  // every second sub-batch stalls its lane
  config.batch_size = 8;
  ShardedVosSketch sketch(config, users);

  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (const Element& e : lanes[p]) sketch.Update(e, p);
      EXPECT_TRUE(sketch.FlushProducer(p).ok());
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_TRUE(sketch.Flush().ok());
  EXPECT_FALSE(sketch.HasPendingIngest());

  const ShardedVosSketch::SpinStats spin = sketch.IngestSpinStats();
  // The budgets adapt but must never leave their clamp.
  EXPECT_GE(spin.min_push_spin_budget, 16u);
  EXPECT_LE(spin.max_push_spin_budget, 512u);
  EXPECT_LE(spin.min_push_spin_budget, spin.max_push_spin_budget);
  EXPECT_GE(spin.min_idle_spin_budget, 16u);
  EXPECT_LE(spin.max_idle_spin_budget, 512u);
  EXPECT_LE(spin.min_idle_spin_budget, spin.max_idle_spin_budget);
  // Capacity-1 rings with 8-element batches guarantee contention
  // somewhere: at least one park or in-budget save must be observed.
  EXPECT_GT(spin.push_parks + spin.push_spin_saves + spin.idle_parks +
                spin.idle_spin_saves,
            0u);

  // The adapted pipeline still lands on the synchronous state (the
  // equivalence contract the budgets must never touch).
  ShardedVosSketch reference(PlannerConfig(shards), users);
  for (const std::vector<Element>& lane : lanes) {
    reference.UpdateBatch(lane.data(), lane.size());
  }
  for (UserId u = 0; u < users; u += 7) {
    EXPECT_EQ(sketch.Cardinality(u), reference.Cardinality(u)) << u;
  }
  const PairEstimate got = sketch.EstimatePair(0, 1);
  const PairEstimate want = reference.EstimatePair(0, 1);
  EXPECT_EQ(got.jaccard, want.jaccard);

  // Synchronous mode has no lanes or workers: all-zero stats.
  const ShardedVosSketch::SpinStats sync_spin = reference.IngestSpinStats();
  EXPECT_EQ(sync_spin.push_parks + sync_spin.push_spin_saves +
                sync_spin.idle_parks + sync_spin.idle_spin_saves,
            0u);
  EXPECT_EQ(sync_spin.max_push_spin_budget, 0u);
  EXPECT_EQ(sync_spin.max_idle_spin_budget, 0u);
}

}  // namespace
}  // namespace vos::core

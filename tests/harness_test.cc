// Unit tests for src/harness: metrics, memory budget, method factory, and
// the experiment runner protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "harness/experiment.h"
#include "harness/memory_budget.h"
#include "harness/method_factory.h"
#include "harness/metrics.h"
#include "stream/dataset.h"

namespace vos::harness {
namespace {

// ----------------------------------------------------------------- Metrics

TEST(MetricsTest, AapeMatchesHandComputation) {
  AapeAccumulator aape;
  aape.Add(10, 12);  // |(10-12)/10| = 0.2
  aape.Add(20, 15);  // 0.25
  EXPECT_DOUBLE_EQ(aape.value(), (0.2 + 0.25) / 2);
  EXPECT_EQ(aape.count(), 2u);
  EXPECT_EQ(aape.skipped(), 0u);
}

TEST(MetricsTest, AapeSkipsZeroTruth) {
  AapeAccumulator aape;
  aape.Add(0, 5);
  EXPECT_EQ(aape.skipped(), 1u);
  EXPECT_DOUBLE_EQ(aape.value(), 0.0);
  aape.Add(10, 10);
  EXPECT_DOUBLE_EQ(aape.value(), 0.0);
  EXPECT_EQ(aape.count(), 1u);
}

TEST(MetricsTest, ArmseMatchesHandComputation) {
  ArmseAccumulator armse;
  armse.Add(0.5, 0.7);  // diff 0.2
  armse.Add(0.2, 0.1);  // diff -0.1
  EXPECT_NEAR(armse.value(), std::sqrt((0.04 + 0.01) / 2), 1e-12);
}

TEST(MetricsTest, ArmseSkipsUndefinedPairs) {
  ArmseAccumulator armse;
  armse.Add(0.0, 0.9, /*defined=*/false);
  EXPECT_EQ(armse.skipped(), 1u);
  EXPECT_DOUBLE_EQ(armse.value(), 0.0);
}

TEST(MetricsTest, EvaluatePairsReduces) {
  std::vector<exact::PairTruth> truths(2);
  truths[0].common = 10;
  truths[0].card_u = 15;
  truths[0].card_v = 15;  // J = 10/20
  truths[1].common = 0;
  truths[1].card_u = 0;
  truths[1].card_v = 0;  // AAPE- and ARMSE-skipped
  std::vector<core::PairEstimate> estimates(2);
  estimates[0].common = 12;
  estimates[0].jaccard = 0.6;
  estimates[1].common = 1;
  estimates[1].jaccard = 0.2;
  const PairMetrics metrics = EvaluatePairs(truths, estimates);
  EXPECT_DOUBLE_EQ(metrics.aape, 0.2);
  EXPECT_NEAR(metrics.armse, 0.1, 1e-12);
  EXPECT_EQ(metrics.pairs_counted_aape, 1u);
  EXPECT_EQ(metrics.pairs_skipped_aape, 1u);
  EXPECT_EQ(metrics.pairs_counted_armse, 1u);
}

// ------------------------------------------------------------ MemoryBudget

TEST(MemoryBudgetTest, PaperSizingRules) {
  // §V: k = 100 registers of 32 bits; |U| users; λ = 2.
  MemoryBudget budget(100, 30000);
  EXPECT_EQ(budget.TotalBits(), 32ull * 100 * 30000);
  EXPECT_EQ(budget.BitsPerUser(), 3200u);
  EXPECT_EQ(budget.BaselineK(), 100u);
  EXPECT_EQ(budget.VosVirtualK(2.0), 6400u);
  EXPECT_EQ(budget.VosArrayBits(), budget.TotalBits());
  EXPECT_EQ(budget.BbitK(2), 1600u);
  EXPECT_EQ(budget.DedicatedOddSketchBits(), 3200u);
}

TEST(MemoryBudgetTest, LambdaScalesVirtualK) {
  MemoryBudget budget(50, 100);
  EXPECT_EQ(budget.VosVirtualK(1.0), 1600u);
  EXPECT_EQ(budget.VosVirtualK(3.0), 4800u);
}

// ----------------------------------------------------------- MethodFactory

MethodFactoryConfig UnitFactory() {
  MethodFactoryConfig config;
  config.base_k = 20;
  config.num_users = 60;
  config.num_items = 50;
  config.seed = 5;
  return config;
}

TEST(MethodFactoryTest, CreatesEveryRegisteredMethod) {
  for (const std::string& name : AllMethods()) {
    auto method = CreateMethod(name, UnitFactory());
    ASSERT_TRUE(method.ok()) << name << ": " << method.status().ToString();
    EXPECT_FALSE((*method)->Name().empty());
  }
}

TEST(MethodFactoryTest, RejectsUnknownNamesAndMissingDomains) {
  EXPECT_EQ(CreateMethod("SimHash", UnitFactory()).status().code(),
            StatusCode::kInvalidArgument);
  MethodFactoryConfig no_domain;
  EXPECT_EQ(CreateMethod("VOS", no_domain).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MethodFactoryTest, EqualMemoryAcrossPaperMethods) {
  // The §V budget: every paper method reports exactly 32·k·|U| bits
  // (VOS's shared array is allocated in 64-bit words, allow rounding).
  const MethodFactoryConfig config = UnitFactory();
  const uint64_t budget_bits = MemoryBudget(config.base_k,
                                            config.num_users).TotalBits();
  for (const std::string& name : PaperMethods()) {
    auto method = CreateMethod(name, config);
    ASSERT_TRUE(method.ok());
    EXPECT_NEAR(static_cast<double>((*method)->MemoryBits()),
                static_cast<double>(budget_bits), 64.0)
        << name;
  }
}

TEST(MethodFactoryTest, PaperMethodsOrder) {
  const auto methods = PaperMethods();
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0], "MinHash");
  EXPECT_EQ(methods[3], "VOS");
}

// -------------------------------------------------------- SelectTrackedSet

TEST(TrackedSetTest, SelectsFromStaticGraphAndRequiresOverlap) {
  auto stream = stream::GenerateDatasetByName("toy");
  ASSERT_TRUE(stream.ok());
  const TrackedSet tracked = SelectTrackedSet(*stream, 30, 0, 7);
  EXPECT_EQ(tracked.users.size(), 30u);
  ASSERT_FALSE(tracked.pairs.empty());

  // Verify every tracked pair indeed shares ≥1 item in the static graph.
  exact::ExactStore static_store(stream->num_users());
  for (const stream::Element& e : stream->elements()) {
    if (e.action == stream::Action::kInsert) static_store.Update(e);
  }
  for (const exact::UserPair& pair : tracked.pairs) {
    EXPECT_GE(static_store.CommonItems(pair.u, pair.v), 1u);
  }
}

TEST(TrackedSetTest, MaxPairsCapsSelection) {
  auto stream = stream::GenerateDatasetByName("toy");
  ASSERT_TRUE(stream.ok());
  const TrackedSet capped = SelectTrackedSet(*stream, 30, 10, 7);
  EXPECT_LE(capped.pairs.size(), 10u);
}

// ------------------------------------------------------- ExperimentRunner

TEST(ExperimentTest, RunsProtocolOnUnitDataset) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ExperimentConfig config;
  config.top_users = 15;
  config.max_pairs = 50;
  config.num_checkpoints = 4;
  config.factory.base_k = 20;
  config.factory.seed = 3;
  auto result =
      RunAccuracyExperiment(*stream, {"MinHash", "VOS"}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->stream_name, "unit");
  EXPECT_EQ(result->stream_elements, stream->size());
  EXPECT_GT(result->tracked_pairs, 0u);
  ASSERT_FALSE(result->checkpoints.empty());
  EXPECT_LE(result->checkpoints.size(), 4u);
  EXPECT_EQ(result->Final().t, stream->size());
  for (const Checkpoint& cp : result->checkpoints) {
    ASSERT_EQ(cp.methods.size(), 2u);
    EXPECT_EQ(cp.methods[0].method, "MinHash");
    EXPECT_EQ(cp.methods[1].method, "VOS");
    for (const MethodCheckpoint& mc : cp.methods) {
      EXPECT_GE(mc.metrics.aape, 0.0);
      EXPECT_GE(mc.metrics.armse, 0.0);
      EXPECT_LE(mc.metrics.armse, 1.0 + 1e-9);
    }
  }
}

TEST(ExperimentTest, ChecksFailFast) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ExperimentConfig config;
  config.factory.base_k = 10;
  EXPECT_EQ(
      RunAccuracyExperiment(*stream, {"NoSuchMethod"}, config).status().code(),
      StatusCode::kInvalidArgument);
  const stream::GraphStream empty("empty", 5, 5);
  EXPECT_EQ(RunAccuracyExperiment(empty, {"VOS"}, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExperimentTest, MeasureUpdateRuntimeIsPositive) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  MethodFactoryConfig factory;
  factory.base_k = 20;
  for (const std::string& name : PaperMethods()) {
    auto seconds = MeasureUpdateRuntime(*stream, name, factory);
    ASSERT_TRUE(seconds.ok()) << name;
    EXPECT_GT(*seconds, 0.0) << name;
    EXPECT_LT(*seconds, 10.0) << name;
  }
}

TEST(ExperimentTest, MeasureUpdateRuntimeRunsMultiProducerReplay) {
  // The multi-producer path: "VOS-sharded" with ingest_producers > 1
  // makes MeasureUpdateRuntime pre-partition the stream by user and
  // replay with one thread per lane. The timing must come back positive
  // and the method must survive the concurrent replay (the sketch-state
  // equivalence itself is covered in sharded_ingest_test).
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  MethodFactoryConfig factory;
  factory.base_k = 20;
  factory.vos_shards = 4;
  factory.ingest_threads = 2;
  factory.ingest_producers = 3;
  auto seconds = MeasureUpdateRuntime(*stream, "VOS-sharded", factory);
  ASSERT_TRUE(seconds.ok());
  EXPECT_GT(*seconds, 0.0);
  EXPECT_LT(*seconds, 10.0);
  // Synchronous mode advertises one lane regardless of the knob, so the
  // single-producer replay path is taken.
  factory.ingest_threads = 0;
  auto sync_seconds = MeasureUpdateRuntime(*stream, "VOS-sharded", factory);
  ASSERT_TRUE(sync_seconds.ok());
  EXPECT_GT(*sync_seconds, 0.0);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  auto stream = stream::GenerateDatasetByName("unit");
  ASSERT_TRUE(stream.ok());
  ExperimentConfig config;
  config.top_users = 10;
  config.num_checkpoints = 2;
  config.factory.base_k = 16;
  auto a = RunAccuracyExperiment(*stream, {"VOS", "OPH"}, config);
  auto b = RunAccuracyExperiment(*stream, {"VOS", "OPH"}, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t c = 0; c < a->checkpoints.size(); ++c) {
    for (size_t m = 0; m < a->checkpoints[c].methods.size(); ++m) {
      EXPECT_DOUBLE_EQ(a->checkpoints[c].methods[m].metrics.aape,
                       b->checkpoints[c].methods[m].metrics.aape);
      EXPECT_DOUBLE_EQ(a->checkpoints[c].methods[m].metrics.armse,
                       b->checkpoints[c].methods[m].metrics.armse);
    }
  }
}

}  // namespace
}  // namespace vos::harness

// Scale integration test: the paper's headline result end-to-end at a
// meaningful fraction of the evaluation-scale dataset. Slower than the unit
// tests (a few seconds) but the strongest regression guard the suite has:
// it exercises generation, the full §V protocol, every paper method, and
// the VOS-wins ordering on the actual youtube_s stand-in.

#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.h"
#include "stream/dataset.h"
#include "stream/stream_stats.h"

namespace vos::harness {
namespace {

TEST(ScaleTest, PaperOrderingHoldsOnScaledYoutube) {
  auto spec = stream::GetDatasetSpec("youtube_s");
  ASSERT_TRUE(spec.ok());
  const stream::DatasetSpec scaled = stream::ScaleSpec(*spec, 0.15);
  const stream::GraphStream stream = stream::GenerateDataset(scaled);

  // Sanity: the scaled stream kept the dynamic character.
  const stream::StreamStats stats = stream.ComputeStats();
  ASSERT_GT(stats.num_deletions, stats.num_insertions / 5);

  ExperimentConfig config;
  config.top_users = 150;
  config.max_pairs = 5000;
  config.num_checkpoints = 2;
  config.factory.base_k = 100;
  config.factory.lambda = 2.0;
  config.factory.seed = 99;

  auto result = RunAccuracyExperiment(stream, PaperMethods(), config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::map<std::string, PairMetrics> final_metrics;
  for (const MethodCheckpoint& mc : result->Final().methods) {
    final_metrics[mc.method] = mc.metrics;
  }

  const PairMetrics& vos = final_metrics.at("VOS");
  // Figure 3's ordering: VOS best on both metrics, on the real preset.
  for (const char* rival : {"MinHash", "OPH", "RP"}) {
    EXPECT_LT(vos.aape, final_metrics.at(rival).aape) << "vs " << rival;
    EXPECT_LT(vos.armse, final_metrics.at(rival).armse) << "vs " << rival;
  }
  // And by a meaningful factor, not a statistical hair. At full scale the
  // gap is 2–3× on both metrics (EXPERIMENTS.md); at this 0.15× test scale
  // the ARMSE gap narrows (smaller degrees raise VOS's relative variance),
  // so the margin there is looser.
  EXPECT_LT(vos.aape * 1.5, final_metrics.at("MinHash").aape);
  EXPECT_LT(vos.armse * 1.2, final_metrics.at("MinHash").armse);
  // Absolute quality floor: at k=100/λ=2 the reproduction achieves ≈0.15
  // AAPE; fail loudly if a regression doubles it.
  EXPECT_LT(vos.aape, 0.35);
  EXPECT_LT(vos.armse, 0.05);
}

TEST(ScaleTest, RuntimeOrderingHoldsAtLargeK) {
  // Figure 2's claim at bench scale: O(1) methods beat O(k) methods by a
  // wide factor once k is large.
  auto spec = stream::GetDatasetSpec("runtime_s");
  ASSERT_TRUE(spec.ok());
  const stream::GraphStream stream =
      stream::GenerateDataset(stream::ScaleSpec(*spec, 0.2));

  MethodFactoryConfig factory;
  factory.base_k = 2000;
  factory.seed = 99;
  std::map<std::string, double> seconds;
  for (const std::string& name : PaperMethods()) {
    auto t = MeasureUpdateRuntime(stream, name, factory);
    ASSERT_TRUE(t.ok()) << name;
    seconds[name] = *t;
  }
  EXPECT_LT(seconds.at("VOS") * 5, seconds.at("MinHash"));
  EXPECT_LT(seconds.at("OPH") * 5, seconds.at("MinHash"));
  EXPECT_LT(seconds.at("VOS") * 5, seconds.at("RP"));
}

}  // namespace
}  // namespace vos::harness

// Unit tests for src/common: Status/StatusOr, BitVector, Rng, ZipfSampler,
// TablePrinter, Flags, CsvWriter.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "common/bit_vector.h"
#include "common/csv_writer.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace vos {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  VOS_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- BitVector

TEST(BitVectorTest, StartsAllZero) {
  BitVector bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.ones(), 0u);
  for (size_t i = 0; i < bits.size(); ++i) EXPECT_FALSE(bits.Get(i));
}

TEST(BitVectorTest, FlipTogglesAndTracksOnes) {
  BitVector bits(70);
  EXPECT_TRUE(bits.Flip(3));
  EXPECT_TRUE(bits.Flip(64));  // crosses the word boundary
  EXPECT_EQ(bits.ones(), 2u);
  EXPECT_TRUE(bits.Get(3));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_FALSE(bits.Flip(3));  // back to zero
  EXPECT_EQ(bits.ones(), 1u);
  EXPECT_FALSE(bits.Get(3));
}

TEST(BitVectorTest, SetAndXor) {
  BitVector bits(10);
  bits.Set(4, true);
  bits.Set(4, true);  // idempotent
  EXPECT_EQ(bits.ones(), 1u);
  bits.Xor(4, false);  // no-op
  EXPECT_TRUE(bits.Get(4));
  bits.Xor(4, true);
  EXPECT_FALSE(bits.Get(4));
  EXPECT_EQ(bits.ones(), 0u);
}

TEST(BitVectorTest, FractionOnes) {
  BitVector bits(8);
  EXPECT_DOUBLE_EQ(bits.FractionOnes(), 0.0);
  bits.Flip(0);
  bits.Flip(1);
  EXPECT_DOUBLE_EQ(bits.FractionOnes(), 0.25);
  EXPECT_DOUBLE_EQ(BitVector(0).FractionOnes(), 0.0);
}

TEST(BitVectorTest, ClearAndReset) {
  BitVector bits(50);
  bits.Flip(10);
  bits.Flip(20);
  bits.Clear();
  EXPECT_EQ(bits.ones(), 0u);
  EXPECT_EQ(bits.size(), 50u);
  bits.Reset(8);
  EXPECT_EQ(bits.size(), 8u);
  EXPECT_EQ(bits.ones(), 0u);
}

TEST(BitVectorTest, HammingDistance) {
  BitVector a(130), b(130);
  a.Flip(0);
  a.Flip(129);
  b.Flip(129);
  b.Flip(64);
  EXPECT_EQ(a.HammingDistance(b), 2u);  // bits 0 and 64 differ
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitVectorTest, XorWithUpdatesOnesExactly) {
  Rng rng(5);
  BitVector a(200), b(200);
  for (int i = 0; i < 300; ++i) {
    a.Set(rng.NextBounded(200), rng.NextBernoulli(0.5));
    b.Set(rng.NextBounded(200), rng.NextBernoulli(0.5));
  }
  const size_t expected = a.HammingDistance(b);
  a.XorWith(b);
  EXPECT_EQ(a.ones(), expected);
  size_t brute = 0;
  for (size_t i = 0; i < a.size(); ++i) brute += a.Get(i);
  EXPECT_EQ(brute, expected);
}

TEST(BitVectorTest, EqualityAndMemory) {
  BitVector a(65), b(65);
  EXPECT_TRUE(a == b);
  a.Flip(7);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.MemoryBits(), 128u);  // two 64-bit words
}

/// Property sweep: ones() stays exact through long random flip sequences at
/// many sizes (including word-boundary sizes).
class BitVectorPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorPropertyTest, OnesMatchesBruteForceUnderRandomFlips) {
  const size_t size = GetParam();
  BitVector bits(size);
  std::vector<bool> model(size, false);
  Rng rng(size * 31 + 1);
  for (int step = 0; step < 2000; ++step) {
    const size_t pos = rng.NextBounded(size);
    bits.Flip(pos);
    model[pos] = !model[pos];
  }
  size_t brute = 0;
  for (size_t i = 0; i < size; ++i) {
    EXPECT_EQ(bits.Get(i), model[i]) << "bit " << i;
    brute += model[i];
  }
  EXPECT_EQ(bits.ones(), brute);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 1000));

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SeedResetsSequence) {
  Rng rng(9);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(9);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  // Chi-square with 9 dof; 99.9% critical value ≈ 27.9.
  double chi2 = 0;
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(21);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElementsAndPermutes) {
  Rng rng(41);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(),
                                              original.end());
  EXPECT_EQ(a, b);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

// ----------------------------------------------------------- ZipfSampler

TEST(ZipfSamplerTest, SamplesWithinRange) {
  Rng rng(3);
  ZipfSampler zipf(17, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 17u);
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform) {
  Rng rng(13);
  ZipfSampler zipf(4, 0.0);
  int counts[4] = {0};
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(ZipfSamplerTest, HeadIsHeavierThanTail) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.0);
  int head = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const size_t r = zipf.Sample(rng);
    if (r == 0) ++head;
    if (r == 99) ++tail;
  }
  // P(0)/P(99) = 100 under alpha=1.
  EXPECT_GT(head, tail * 20);
}

TEST(ZipfSamplerTest, SingleRankAlwaysZero) {
  Rng rng(19);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

/// Frequency of rank r should be ∝ 1/(r+1)^alpha; check the ratio of
/// adjacent head ranks across exponents.
class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, HeadRatioMatchesExponent) {
  const double alpha = GetParam();
  Rng rng(static_cast<uint64_t>(alpha * 100) + 7);
  ZipfSampler zipf(1000, alpha);
  size_t c0 = 0, c1 = 0;
  for (int i = 0; i < 200000; ++i) {
    const size_t r = zipf.Sample(rng);
    c0 += (r == 0);
    c1 += (r == 1);
  }
  const double expected_ratio = std::pow(2.0, alpha);
  EXPECT_NEAR(static_cast<double>(c0) / c1, expected_ratio,
              0.15 * expected_ratio);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfExponentTest,
                         ::testing::Values(0.5, 0.75, 1.0, 1.5));

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsColumnsAndFormats) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddRow({"b", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "  1.5" end-aligned with "   22".
  EXPECT_NE(out.find(" 1.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::FormatInt(42), "42");
  EXPECT_EQ(TablePrinter::FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(TablePrinter::FormatDouble(1234567.0, 3), "1.23e+06");
}

// ----------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesBothForms) {
  const char* argv[] = {"prog", "--k=100", "--dataset", "youtube_s",
                        "--verbose"};
  auto flags = Flags::Parse(5, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("k", 0), 100);
  EXPECT_EQ(flags->GetString("dataset", ""), "youtube_s");
  EXPECT_TRUE(flags->GetBool("verbose", false));
  EXPECT_FALSE(flags->Has("missing"));
  EXPECT_EQ(flags->GetDouble("lambda", 2.0), 2.0);  // default
}

TEST(FlagsTest, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  auto flags = Flags::Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.ok());
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, TypedDefaultsAndOverrides) {
  const char* argv[] = {"prog", "--x=2.5", "--flag=false"};
  auto flags = Flags::Parse(3, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 0.0), 2.5);
  EXPECT_FALSE(flags->GetBool("flag", true));
}

// ------------------------------------------------------------- CsvWriter

TEST(CsvWriterTest, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/vos_csv_test.csv";
  auto writer = CsvWriter::Open(path, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->WriteRow({"plain", "has,comma"}).ok());
  ASSERT_TRUE(writer->WriteRow({"quote\"inside", "2"}).ok());
  ASSERT_TRUE(writer->Close().ok());

  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(),
            "a,b\nplain,\"has,comma\"\n\"quote\"\"inside\",2\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RowArityEnforced) {
  const std::string path = ::testing::TempDir() + "/vos_csv_arity.csv";
  auto writer = CsvWriter::Open(path, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ(writer->WriteRow({"only-one"}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->WriteRow({"x", "y"}).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  auto writer = CsvWriter::Open("/nonexistent-dir/file.csv", {"a"});
  EXPECT_FALSE(writer.ok());
  EXPECT_EQ(writer.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace vos
